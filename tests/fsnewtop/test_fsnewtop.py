"""Integration tests for the FS-NewTOP system (failure-free paths)."""

import pytest

from repro.fsnewtop import ByzantineTolerantGroup, node_requirements
from repro.newtop import ServiceType
from repro.sim import Simulator


def _group(n=3, seed=0, **kwargs):
    sim = Simulator(seed=seed)
    group = ByzantineTolerantGroup(sim, n_members=n, **kwargs)
    return sim, group


def _values(group, member):
    return [m.value for m in group.deliveries(member)]


def _keys(group, member):
    return [(m.sender, m.value) for m in group.deliveries(member)]


def test_single_multicast_delivered_everywhere():
    sim, group = _group(n=3)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "hello")
    sim.run_until_idle()
    for member in range(3):
        assert _values(group, member) == ["hello"]


def test_total_order_agreement():
    sim, group = _group(n=4, seed=5)
    for i in range(8):
        group.multicast(i % 4, ServiceType.SYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    sequences = [_keys(group, m) for m in range(4)]
    assert all(len(seq) == 8 for seq in sequences)
    assert sequences.count(sequences[0]) == 4


def test_agreement_across_seeds():
    for seed in range(4):
        sim, group = _group(n=3, seed=seed)
        for i in range(6):
            group.multicast(i % 3, ServiceType.SYMMETRIC_TOTAL.value, i)
        sim.run_until_idle(max_events=3_000_000)
        sequences = [_keys(group, m) for m in range(3)]
        assert all(len(seq) == 6 for seq in sequences), f"seed {seed}"
        assert sequences.count(sequences[0]) == 3, f"seed {seed}"


def test_replica_pairs_stay_identical():
    sim, group = _group(n=3, seed=2)
    for i in range(6):
        group.multicast(i % 3, ServiceType.SYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    for member_id in group.member_ids:
        member = group.members[member_id]
        leader_session = member.gc_leader.session("group")
        follower_session = member.gc_follower.session("group")
        assert leader_session.symmetric.delivered_count == 6
        assert follower_session.symmetric.delivered_count == 6
        assert leader_session.symmetric.lamport == follower_session.symmetric.lamport


def test_no_fail_signals_in_failure_free_run():
    sim, group = _group(n=3)
    for i in range(5):
        group.multicast(i % 3, ServiceType.SYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    for member_id in group.member_ids:
        assert not group.members[member_id].fs_process.signaled
        assert group.members[member_id].inbox.fail_signals_received == 0


def test_collapsed_layout_uses_n_nodes():
    sim, group = _group(n=3, collapsed=True)
    assert group.nodes_used() == 3


def test_figure4_layout_uses_2n_nodes():
    sim, group = _group(n=3, collapsed=False)
    assert group.nodes_used() == 6


def test_figure4_layout_works():
    sim, group = _group(n=3, collapsed=False, seed=8)
    for i in range(4):
        group.multicast(i % 3, ServiceType.SYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    sequences = [_keys(group, m) for m in range(3)]
    assert all(len(seq) == 4 for seq in sequences)
    assert sequences.count(sequences[0]) == 3


def test_other_services_work_through_fs():
    sim, group = _group(n=3)
    group.multicast(0, ServiceType.ASYMMETRIC_TOTAL.value, "seq")
    group.multicast(1, ServiceType.CAUSAL.value, "causal")
    group.multicast(2, ServiceType.RELIABLE.value, "rel")
    sim.run_until_idle()
    for member in range(3):
        assert sorted(_values(group, member), key=str) == ["causal", "rel", "seq"]


def test_node_requirements_table():
    r1 = node_requirements(1)
    assert r1.app_replicas == 3
    assert r1.fs_newtop_nodes == 6  # 4f+2
    assert r1.traditional_bft_nodes == 4  # 3f+1
    assert r1.crash_tolerant_nodes == 2
    assert r1.fs_overhead_nodes == 2  # (f+1)
    r3 = node_requirements(3)
    assert r3.fs_newtop_nodes == 14
    assert r3.traditional_bft_nodes == 10
    assert r3.fs_overhead_nodes == 4


def test_node_requirements_validation():
    with pytest.raises(ValueError):
        node_requirements(-1)


def test_payloads_roundtrip():
    sim, group = _group(n=2)
    value = {"auction": "lot-7", "bid": 1200}
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, value)
    sim.run_until_idle()
    assert _values(group, 1) == [value]


def test_single_member_group():
    sim, group = _group(n=1, collapsed=False)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "solo")
    sim.run_until_idle()
    assert _values(group, 0) == ["solo"]
