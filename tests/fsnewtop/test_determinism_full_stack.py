"""Full-stack determinism: the entire FS-NewTOP deployment replays
bit-for-bit from its seed -- the property the replica pairs (and our
experiments) rest on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsnewtop import ByzantineTolerantGroup
from repro.newtop import ServiceType
from repro.sim import Simulator


def _run(seed, n, rounds):
    sim = Simulator(seed=seed)
    group = ByzantineTolerantGroup(sim, n_members=n)
    for r in range(rounds):
        for m in range(n):
            sim.schedule(
                r * 200.0,
                lambda m=m, r=r: group.multicast(m, ServiceType.SYMMETRIC_TOTAL.value, (r, m)),
            )
    sim.run_until_idle(max_events=10_000_000)
    deliveries = tuple(
        tuple((d.sender, d.value, d.delivered_at) for d in group.deliveries(m))
        for m in range(n)
    )
    return deliveries, sim.trace.fingerprint(), sim.events_processed


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=5, deadline=None)
def test_identical_replay(seed):
    assert _run(seed, 3, 2) == _run(seed, 3, 2)


def test_different_seeds_diverge_in_timing():
    a = _run(1, 3, 2)
    b = _run(2, 3, 2)
    # Same protocol outcome (values agree) but different timing trace.
    assert a[1] != b[1]
