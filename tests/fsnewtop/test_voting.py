"""Tests for client-side majority voting (application-level masking)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsnewtop.voting import MajorityVoter


def test_requires_odd_replica_count():
    with pytest.raises(ValueError):
        MajorityVoter(4)
    with pytest.raises(ValueError):
        MajorityVoter(0)


def test_fault_budget():
    assert MajorityVoter(3).fault_budget == 1
    assert MajorityVoter(5).fault_budget == 2


def test_unanimous_decision():
    voter = MajorityVoter(3)
    assert voter.submit_reply("r1", "a", 42) is None
    outcome = voter.submit_reply("r1", "b", 42)
    assert outcome is not None
    assert outcome.value == 42
    assert outcome.agreeing == ("a", "b")
    # The third reply confirms but does not re-decide.
    assert voter.submit_reply("r1", "c", 42) is None
    assert voter.outcome("r1").unanimous


def test_masks_one_byzantine_reply():
    voter = MajorityVoter(3)
    voter.submit_reply("r1", "a", {"total": 10})
    voter.submit_reply("r1", "evil", {"total": 999})
    outcome = voter.submit_reply("r1", "b", {"total": 10})
    assert outcome.value == {"total": 10}
    assert outcome.dissenting == ("evil",)
    assert voter.suspected_replicas == {"evil"}


def test_late_divergent_reply_flags_replica():
    voter = MajorityVoter(3)
    voter.submit_reply("r1", "a", 1)
    voter.submit_reply("r1", "b", 1)
    voter.submit_reply("r1", "late-evil", 2)
    assert voter.suspected_replicas == {"late-evil"}
    assert voter.outcome("r1").value == 1


def test_duplicate_votes_ignored():
    voter = MajorityVoter(3)
    voter.submit_reply("r1", "evil", 7)
    voter.submit_reply("r1", "evil", 7)
    assert voter.outcome("r1") is None  # one replica is not a majority


def test_decision_callback():
    seen = []
    voter = MajorityVoter(3, on_decision=seen.append)
    voter.submit_reply("r", "a", "x")
    voter.submit_reply("r", "b", "x")
    assert len(seen) == 1 and seen[0].value == "x"


def test_equal_values_of_different_type_do_not_merge():
    """1 and 1.0 compare equal in Python; canonical encoding keeps the
    vote honest about representations."""
    voter = MajorityVoter(3)
    voter.submit_reply("r", "a", 1)
    assert voter.submit_reply("r", "b", 1.0) is None


@given(
    f=st.integers(min_value=1, max_value=3),
    wrong=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40)
def test_masks_up_to_f_wrong_replies(f, wrong):
    wrong = min(wrong, f)
    n = 2 * f + 1
    voter = MajorityVoter(n)
    outcome = None
    for i in range(wrong):
        voter.submit_reply("r", f"bad-{i}", f"garbage-{i}")
    for i in range(n - wrong):
        result = voter.submit_reply("r", f"good-{i}", "correct")
        outcome = result if result is not None else outcome
    assert outcome is not None
    assert outcome.value == "correct"
    assert len(outcome.dissenting) == wrong
