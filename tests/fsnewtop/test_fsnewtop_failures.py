"""FS-NewTOP under faults: the paper's robustness claims.

* fail-signals convert to suspicions that *cannot be false*;
* groups never split when there are no failures (even on nasty
  networks), unlike timeout-based NewTOP;
* Byzantine middleware faults are contained: either masked or converted
  into a clean membership change;
* total order keeps terminating -- no liveness assumption needed.
"""

from repro.core import FsoRole
from repro.fsnewtop import ByzantineTolerantGroup
from repro.net import SpikeDelay, UniformDelay
from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator


def _group(n=3, seed=0, **kwargs):
    sim = Simulator(seed=seed)
    return sim, ByzantineTolerantGroup(sim, n_members=n, **kwargs)


def _values(group, member):
    return [m.value for m in group.deliveries(member)]


def _send_round(sim, group, n, round_no, at):
    for m in range(n):
        sim.schedule(
            at, lambda m=m: group.multicast(m, ServiceType.SYMMETRIC_TOTAL.value, (round_no, m))
        )


def test_backup_node_crash_produces_certain_suspicion():
    sim, group = _group(n=3, collapsed=False)
    _send_round(sim, group, 3, 0, 0.0)
    sim.run_until_idle()
    group.crash_backup(0)
    _send_round(sim, group, 3, 1, sim.now + 10.0)
    sim.run_until_idle()
    # member-0's FS middleware signalled; survivors converted the signal
    # into a suspicion and installed a view without member-0.
    assert group.fs_process_of(0).signaled
    for m in (1, 2):
        views = group.views(m)
        assert views, f"member-{m} installed no view"
        assert views[-1].members == ("member-1", "member-2")
    # Certainty: the suspicions raised name exactly the faulty member.
    for m in (1, 2):
        assert set(group.member(m).suspector.suspicions_raised) == {"member-0"}


def test_primary_node_crash_detected_via_t2():
    sim, group = _group(n=3, collapsed=False)
    _send_round(sim, group, 3, 0, 0.0)
    sim.run_until_idle()
    group.crash_primary(0)
    _send_round(sim, group, 3, 1, sim.now + 10.0)
    sim.run_until_idle()
    assert group.fs_process_of(0).follower.signaled
    assert group.fs_process_of(0).follower.signal_reason == "leader-silent"
    for m in (1, 2):
        assert group.views(m)[-1].members == ("member-1", "member-2")


def test_total_order_continues_after_fault():
    sim, group = _group(n=4, collapsed=False, seed=3)
    _send_round(sim, group, 4, 0, 0.0)
    sim.run_until_idle()
    group.crash_backup(3)
    _send_round(sim, group, 4, 1, sim.now + 10.0)
    sim.run_until_idle()
    for m in range(3):
        sim.schedule(0.0, lambda m=m: group.multicast(
            m, ServiceType.SYMMETRIC_TOTAL.value, ("post", m)
        ))
    sim.run_until_idle()
    survivors = [0, 1, 2]
    sequences = []
    for m in survivors:
        post = [d for d in group.deliveries(m) if isinstance(d.value, tuple) and d.value[0] == "post"]
        sequences.append([(d.sender, d.value) for d in post])
    assert all(len(seq) == 3 for seq in sequences)
    assert sequences.count(sequences[0]) == 3


def test_byzantine_corrupting_middleware_contained():
    """A member's GC replica corrupts its outputs: comparison catches it,
    a fail-signal (not a corrupted protocol message) reaches the group,
    and the group reforms without the faulty member."""
    sim, group = _group(n=3, collapsed=False, byzantine_members=[1])
    _send_round(sim, group, 3, 0, 0.0)
    sim.run_until_idle()
    baseline = {m: len(_values(group, m)) for m in range(3)}
    group.byzantine_fso(1, FsoRole.FOLLOWER).go_byzantine(corrupt_outputs=True)
    _send_round(sim, group, 3, 1, sim.now + 10.0)
    sim.run_until_idle()
    assert group.fs_process_of(1).signaled
    for m in (0, 2):
        assert group.views(m)[-1].members == ("member-0", "member-2")
    # No member ever delivered a value that was not actually multicast.
    legal = {("r", i) for i in range(3)} | {(0, m) for m in range(3)} | {(1, m) for m in range(3)}
    for m in (0, 2):
        for d in group.deliveries(m):
            assert d.value in legal, f"corrupted value escaped: {d.value!r}"


def test_fs2_spurious_signal_removes_only_the_signaler():
    """An FSO emitting arbitrary fail-signals (fs2) is treated as faulty
    -- correctly so -- and removed; nobody else is affected."""
    sim, group = _group(n=4, collapsed=False, seed=7)
    _send_round(sim, group, 4, 0, 0.0)
    sim.run_until_idle()
    group.fs_process_of(2).leader.inject_arbitrary_signal()
    sim.run_until_idle()
    _send_round(sim, group, 4, 1, sim.now + 10.0)
    sim.run_until_idle()
    for m in (0, 1, 3):
        assert group.views(m)[-1].members == ("member-0", "member-1", "member-3")


def test_no_split_without_failure_on_spiky_network():
    """The headline contrast with NewTOP: on a network with delay spikes
    that fool timeout-based suspicion, FS-NewTOP never splits because it
    has no timeouts to fool (suspicions cannot be false)."""
    spiky = SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.3, spike_ms=400.0)
    sim = Simulator(seed=11)
    fs_group = ByzantineTolerantGroup(sim, n_members=3, delay=spiky)
    for r in range(5):
        for m in range(3):
            sim.schedule(
                r * 500.0,
                lambda m=m, r=r: fs_group.multicast(
                    m, ServiceType.SYMMETRIC_TOTAL.value, (r, m)
                ),
            )
    sim.run_until_idle(max_events=10_000_000)
    for m in range(3):
        assert fs_group.views(m) == [], "FS-NewTOP split with no failure present"
        assert len(_values(fs_group, m)) == 15

    # The same spiky network with the same seed splits NewTOP's group
    # when its suspector timeouts are aggressive (see also
    # tests/newtop/test_membership.py).
    sim2 = Simulator(seed=11)
    crash_group = CrashTolerantGroup(
        sim2,
        n_members=3,
        delay=SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.3, spike_ms=400.0),
        suspectors=True,
        suspector_interval=100.0,
        suspector_timeout=50.0,
        suspector_max_misses=1,
    )
    sim2.run(until=120_000)
    assert any(crash_group.views(m) for m in range(3)), (
        "expected the timeout-based baseline to split under the same conditions"
    )


def test_termination_without_synchrony_window():
    """Total order terminates although the network never offers a
    'stable delay' window (delays drawn from a heavy-mix distribution
    throughout) -- there is no liveness requirement to meet."""
    wild = SpikeDelay(UniformDelay(0.5, 30.0), spike_probability=0.2, spike_ms=250.0)
    sim = Simulator(seed=23)
    group = ByzantineTolerantGroup(sim, n_members=3, delay=wild)
    for r in range(3):
        for m in range(3):
            sim.schedule(
                r * 800.0,
                lambda m=m, r=r: group.multicast(m, ServiceType.SYMMETRIC_TOTAL.value, (r, m)),
            )
    sim.run_until_idle(max_events=10_000_000)
    sequences = [[(d.sender, d.value) for d in group.deliveries(m)] for m in range(3)]
    assert all(len(seq) == 9 for seq in sequences)
    assert sequences.count(sequences[0]) == 3
    assert all(not group.members[m].fs_process.signaled for m in group.member_ids)
