"""Tests for the ordering workload driver."""

import pytest

from repro.workloads import run_ordering_experiment


def test_newtop_run_completes_and_measures():
    result = run_ordering_experiment("newtop", 3, messages_per_member=5, interval=100.0)
    assert result.system == "newtop"
    assert result.n_members == 3
    # Every message fully ordered at every member.
    assert result.latency.count == 5 * 3 * 3
    assert result.throughput_msgs_per_s > 0
    assert result.network_messages > 0
    assert result.fail_signals == 0


def test_fs_newtop_run_completes_without_signals():
    result = run_ordering_experiment("fs-newtop", 3, messages_per_member=5, interval=150.0)
    assert result.latency.count == 5 * 3 * 3
    assert result.fail_signals == 0


def test_fs_newtop_slower_than_newtop():
    """The core comparison of the evaluation: same workload, same seed,
    FS-NewTOP pays latency for the fail-signal guarantee."""
    base = run_ordering_experiment("newtop", 4, messages_per_member=5, interval=200.0)
    fs = run_ordering_experiment("fs-newtop", 4, messages_per_member=5, interval=200.0)
    assert fs.latency.mean > base.latency.mean
    assert fs.network_messages > base.network_messages


def test_message_size_accounted():
    small = run_ordering_experiment("newtop", 3, messages_per_member=4, message_size=3)
    large = run_ordering_experiment("newtop", 3, messages_per_member=4, message_size=8192)
    assert large.network_bytes > small.network_bytes + 8000
    assert large.latency.mean > small.latency.mean


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        run_ordering_experiment("pbft", 3)


def test_deterministic_per_seed():
    a = run_ordering_experiment("newtop", 3, seed=7, messages_per_member=4)
    b = run_ordering_experiment("newtop", 3, seed=7, messages_per_member=4)
    assert a.latency == b.latency
    assert a.throughput_msgs_per_s == b.throughput_msgs_per_s


def test_result_row_shape():
    r = run_ordering_experiment("newtop", 2, messages_per_member=3)
    row = r.row()
    assert set(row) == {"system", "members", "latency_ms", "throughput"}
