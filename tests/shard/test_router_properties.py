"""Property-based tests of the shard router.

The property that makes rendezvous hashing the right router is
*stability under membership churn*: re-sizing the shard set must move
only the keys it has to.  Hypothesis drives arbitrary keys and shard
counts through the mapping; a mod-S router fails these immediately.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.router import ShardRouter, keyspace

KEYS = st.text(min_size=0, max_size=40)
SHARDS = st.integers(min_value=1, max_value=9)


@given(key=KEYS, shards=SHARDS)
@settings(max_examples=60, deadline=None)
def test_mapping_is_deterministic_and_in_range(key, shards):
    router = ShardRouter(shards)
    owner = router.shard_of(key)
    assert 0 <= owner < shards
    # Same answer from a fresh router (no per-instance state involved).
    assert ShardRouter(shards).shard_of(key) == owner


@given(key=KEYS, shards=SHARDS)
@settings(max_examples=60, deadline=None)
def test_growing_the_shard_set_only_moves_keys_to_the_new_shard(key, shards):
    before = ShardRouter(shards).shard_of(key)
    after = ShardRouter(shards + 1).shard_of(key)
    assert after == before or after == shards


@given(key=KEYS, shards=st.integers(min_value=2, max_value=9))
@settings(max_examples=60, deadline=None)
def test_shrinking_only_remaps_the_removed_shards_keys(key, shards):
    before = ShardRouter(shards).shard_of(key)
    after = ShardRouter(shards - 1).shard_of(key)
    if before != shards - 1:  # key did not live on the removed shard
        assert after == before


@given(shards=st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_owned_keys_partition_the_keyspace(shards):
    keys = keyspace(256)
    router = ShardRouter(shards)
    pools = [router.owned_keys(shard, keys) for shard in range(shards)]
    flattened = [key for pool in pools for key in pool]
    assert sorted(flattened) == sorted(keys)  # disjoint and complete
    # The scenario keyspaces rely on every shard owning something.
    assert all(pools), [len(pool) for pool in pools]


@given(keys=st.lists(KEYS, max_size=12), shards=SHARDS)
@settings(max_examples=60, deadline=None)
def test_shards_of_is_the_sorted_owner_set(keys, shards):
    router = ShardRouter(shards)
    involved = router.shards_of(keys)
    assert list(involved) == sorted(set(involved))
    assert set(involved) == {router.shard_of(key) for key in keys}
