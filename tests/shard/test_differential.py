"""Differential tests: the sharded path against its controls.

The load-bearing guarantee is that sharding is *pay-for-what-you-use*:

* a single-shard (S=1) deployment is byte-identical -- same trace
  fingerprint, same ordered output -- to the plain keyed workload on
  an unsharded group;
* a spec without a ShardSpec never touches the shard machinery at all
  (covered by the whole pre-existing suite staying green).
"""

from repro.experiments.runner import build_ordering_group
from repro.experiments.spec import ScenarioSpec, ShardSpec
from repro.perf import clear_caches
from repro.shard.group import build_sharded_group
from repro.sim.scheduler import Simulator
from repro.workloads.ordering import OrderingWorkload, ShardedOrderingWorkload

SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=5,
    interval=80.0,
    seed=3,
    settle_ms=10_000.0,
)
KEYSPACE = 32


def _ordered_output(group, member_ids):
    return {
        member: [
            (message.value["s"], message.value["r"], message.value.get("k"))
            for message in group.deliveries(member)
        ]
        for member in member_ids
    }


def _run_unsharded_keyed():
    sim = Simulator(seed=SPEC.seed)
    group = build_ordering_group(sim, SPEC)
    workload = OrderingWorkload(
        sim,
        group,
        messages_per_member=SPEC.messages_per_member,
        interval=SPEC.interval,
        message_size=SPEC.message_size,
        keyspace=KEYSPACE,
    )
    workload.run(settle_ms=SPEC.settle_ms)
    clear_caches()
    return sim.trace.fingerprint(), _ordered_output(group, group.member_ids), workload


def _run_sharded(shards: int):
    sim = Simulator(seed=SPEC.seed)
    spec = SPEC.replace(shard=ShardSpec(shards=shards, keyspace=KEYSPACE))
    group = build_sharded_group(sim, spec)
    workload = ShardedOrderingWorkload(
        sim,
        group,
        messages_per_member=SPEC.messages_per_member,
        interval=SPEC.interval,
        message_size=SPEC.message_size,
        keyspace=KEYSPACE,
    )
    workload.run(settle_ms=SPEC.settle_ms)
    clear_caches()
    return sim.trace.fingerprint(), _ordered_output(group, group.member_ids), workload


def test_single_shard_trace_is_byte_identical_to_unsharded():
    unsharded_print, unsharded_out, __ = _run_unsharded_keyed()
    sharded_print, sharded_out, __ = _run_sharded(shards=1)
    assert sharded_print == unsharded_print
    assert sharded_out == unsharded_out


def test_single_shard_metrics_match_unsharded():
    __, __, unsharded = _run_unsharded_keyed()
    __, __, sharded = _run_sharded(shards=1)
    base = unsharded.result("fs-newtop")
    one = sharded.result("fs-newtop")
    assert one.throughput_msgs_per_s == base.throughput_msgs_per_s
    assert one.latency.mean == base.latency.mean
    assert one.network_messages == base.network_messages
    assert one.network_bytes == base.network_bytes


def test_two_shards_order_the_same_keyed_load_per_shard():
    """Same total keyed load at S=2: every message fully ordered inside
    its shard, with per-shard prefix agreement."""
    __, out, workload = _run_sharded(shards=2)
    group = workload.group
    assert workload.recorder.fully_delivered(workload.n_members) == (
        SPEC.n_members * SPEC.messages_per_member
    )
    for shard_group in group.shard_groups:
        sequences = [out[m] for m in shard_group.member_ids]
        assert all(seq == sequences[0] for seq in sequences[1:])


def test_sharded_run_is_seed_deterministic():
    first = _run_sharded(shards=2)[0]
    second = _run_sharded(shards=2)[0]
    assert first == second
