"""Protocol tests of the cross-shard barrier.

Runs small sharded deployments with cross-shard traffic and checks the
Skeen-style guarantees directly on the trace: reservations precede
commits, releases respect the global ``(final_seq, op)`` order at every
member, and the order is identical across the members of every
involved shard.
"""

import pytest

from repro.experiments.spec import ScenarioSpec, ShardSpec
from repro.shard.barrier import CrossShardCoordinator
from repro.shard.group import build_sharded_group
from repro.sim.scheduler import Simulator
from repro.workloads.ordering import ShardedOrderingWorkload

SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=6,
    interval=50.0,
    seed=5,
    settle_ms=15_000.0,
    shard=ShardSpec(shards=2, cross_shard_ratio=0.5, keyspace=32),
)


@pytest.fixture(scope="module")
def run():
    sim = Simulator(seed=SPEC.seed)
    group = build_sharded_group(sim, SPEC)
    workload = ShardedOrderingWorkload(
        sim,
        group,
        messages_per_member=SPEC.messages_per_member,
        interval=SPEC.interval,
        message_size=SPEC.message_size,
        keyspace=SPEC.shard.keyspace,
        cross_shard_ratio=SPEC.shard.cross_shard_ratio,
    )
    workload.run(settle_ms=SPEC.settle_ms)
    return sim, group, workload


def test_every_cross_shard_op_commits_and_completes(run):
    sim, group, workload = run
    submits = sim.trace.select(category="shard", event="submit")
    commits = sim.trace.select(category="shard", event="commit")
    assert len(submits) == len(workload._xs_keys) > 0
    assert {r.detail("op") for r in commits} == {r.detail("op") for r in submits}
    assert group.coordinator.ops_committed == group.coordinator.ops_started
    # Every cross-shard op reached full delivery across both shards.
    assert workload.shard_metrics()["cross_shard_ordered"] == len(workload._xs_keys)


def test_releases_follow_the_global_sequence_at_every_member(run):
    sim, group, __ = run
    per_member: dict[str, list[tuple[int, str]]] = {}
    for record in sim.trace.select(category="shard", event="release"):
        member = record.source[: -len(".agent")]
        per_member.setdefault(member, []).append(
            (record.detail("seq"), record.detail("op"))
        )
    assert per_member, "no releases traced"
    for member, sequence in per_member.items():
        assert sequence == sorted(sequence), f"{member} released out of order"
    # All members of every shard release the identical sequence.
    for shard_group in group.shard_groups:
        sequences = [per_member[m] for m in shard_group.member_ids]
        assert all(seq == sequences[0] for seq in sequences[1:])


def test_commit_sequence_is_the_maximum_reservation(run):
    sim, group, __ = run
    # Each agent's clock only ever advanced to the max of what it saw,
    # so final sequences must be strictly increasing per commit order
    # within one coordinator (ties broken by op id are still >=).
    commits = sim.trace.select(category="shard", event="commit")
    sequences = [record.detail("seq") for record in commits]
    assert all(isinstance(seq, int) and seq >= 1 for seq in sequences)
    assert sequences == sorted(sequences)


def test_holdback_drains_completely(run):
    __, group, __ = run
    for agent in group.agents.values():
        assert not agent.committed, f"{agent.member_id} still holds commits"
        assert not agent.reserved, f"{agent.member_id} still holds reservations"


def test_coordinator_rejects_degenerate_ops():
    sim = Simulator(seed=0)
    coordinator = CrossShardCoordinator(sim, 2, lambda shard, value: None)
    with pytest.raises(ValueError):
        coordinator.begin("x1", (0,), {})
    coordinator.begin("x2", (0, 1), {})
    with pytest.raises(ValueError):
        coordinator.begin("x2", (0, 1), {})
