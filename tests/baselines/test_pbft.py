"""Tests for the PBFT-style 3f+1 comparator."""

import pytest

from repro.baselines import PbftCluster
from repro.net import Network, UniformDelay
from repro.sim import Simulator


def _cluster(f=1, seed=0, timeout=500.0, delay=None):
    sim = Simulator(seed=seed)
    net = Network(sim, default_delay=delay if delay is not None else UniformDelay(0.3, 1.2))
    cluster = PbftCluster(sim, f=f, network=net, view_timeout=timeout)
    return sim, net, cluster


def test_cluster_size_is_3f_plus_1():
    __, __, c1 = _cluster(f=1)
    assert c1.n == 4
    __, __, c2 = _cluster(f=2)
    assert c2.n == 7


def test_invalid_f_rejected():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        PbftCluster(sim, f=0, network=net)


def test_single_request_executes_everywhere():
    sim, net, cluster = _cluster()
    cluster.submit({"op": "write", "k": 1})
    sim.run(until=2_000)
    sequences = cluster.executed_sequences()
    assert all(seq == [1] for seq in sequences)


def test_requests_execute_in_total_order():
    sim, net, cluster = _cluster(seed=3)
    for i in range(8):
        sim.schedule(i * 5.0, lambda i=i: cluster.submit({"op": i}))
    sim.run(until=10_000)
    sequences = cluster.executed_sequences()
    assert all(len(seq) == 8 for seq in sequences)
    assert sequences.count(sequences[0]) == cluster.n


def test_tolerates_f_silent_byzantine_replicas():
    sim, net, cluster = _cluster(f=1, seed=5)
    cluster.make_byzantine_silent("pbft-3")
    for i in range(4):
        cluster.submit({"op": i})
    sim.run(until=10_000)
    healthy = [seq for rid, seq in zip(cluster.replica_ids, cluster.executed_sequences())
               if rid != "pbft-3"]
    assert all(len(seq) == 4 for seq in healthy)
    assert healthy.count(healthy[0]) == 3


def test_primary_crash_triggers_view_change_and_recovers():
    sim, net, cluster = _cluster(f=1, seed=7, timeout=300.0)
    cluster.submit({"op": "first"})
    sim.run(until=2_000)
    cluster.crash("pbft-0")  # the view-0 primary
    cluster.submit({"op": "second"})
    sim.run(until=30_000)
    survivors = [r for r in cluster.replica_ids if r != "pbft-0"]
    for replica_id in survivors:
        replica = cluster.replicas[replica_id]
        assert replica.view >= 1, "no view change happened"
        assert len(replica.executed) == 2, f"{replica_id} executed {len(replica.executed)}"
    sequences = [
        [req.op_id for req in cluster.replicas[r].executed] for r in survivors
    ]
    assert sequences.count(sequences[0]) == 3


def test_liveness_depends_on_timeout_choice():
    """The paper's argument made concrete: with message delays that can
    exceed the view timeout, the cluster churns through view changes --
    termination hinges on a lucky timeout choice, unlike fail-signals."""
    from repro.net import SpikeDelay

    spiky = SpikeDelay(UniformDelay(0.5, 2.0), spike_probability=0.5, spike_ms=800.0)
    sim, net, cluster = _cluster(f=1, seed=2, timeout=100.0, delay=spiky)
    for i in range(3):
        cluster.submit({"op": i})
    sim.run(until=30_000)
    churn = sum(r.view_changes for r in cluster.replicas.values())
    assert churn > 0, "expected view-change churn with timeouts below the delay tail"


def test_message_complexity_is_quadratic():
    """PBFT normal case costs O(n^2) messages per request (prepare and
    commit are all-to-all), like symmetric order -- but with an extra
    round."""
    sim4, net4, c4 = _cluster(f=1)
    c4.submit({"op": 1})
    sim4.run(until=2_000)
    msgs_f1 = net4.stats.messages_sent

    sim7, net7, c7 = _cluster(f=2)
    c7.submit({"op": 1})
    sim7.run(until=2_000)
    msgs_f2 = net7.stats.messages_sent
    # n goes 4 -> 7 (1.75x); messages should grow superlinearly (~3x).
    assert msgs_f2 > 2.2 * msgs_f1


def test_duplicate_submission_executes_once():
    sim, net, cluster = _cluster()
    request = cluster.submit({"op": "x"})
    # Replay the same request at every replica.
    for replica in cluster.replicas.values():
        sim.schedule(1.0, replica.submit, request)
    sim.run(until=5_000)
    assert all(len(seq) == 1 for seq in cluster.executed_sequences())
