"""Unit tests for the actor base class."""

import pytest

from repro.sim import Process, Simulator


class Echo(Process):
    def __init__(self, sim, name="echo"):
        super().__init__(sim, name)
        self.messages = []
        self.timers = []

    def on_message(self, message):
        self.messages.append((self.sim.now, message))

    def on_timer(self, tag, *args):
        self.timers.append((self.sim.now, tag, args))


def test_deliver_invokes_on_message():
    sim = Simulator()
    proc = Echo(sim)
    proc.deliver("hello")
    assert proc.messages == [(0.0, "hello")]


def test_killed_process_ignores_messages():
    sim = Simulator()
    proc = Echo(sim)
    proc.kill()
    proc.deliver("hello")
    assert proc.messages == []
    assert not proc.alive


def test_timer_fires_with_args():
    sim = Simulator()
    proc = Echo(sim)
    proc.set_timer("ping", 4.0, 1, 2)
    sim.run_until_idle()
    assert proc.timers == [(4.0, "ping", (1, 2))]


def test_rearming_timer_cancels_previous():
    sim = Simulator()
    proc = Echo(sim)
    proc.set_timer("t", 10.0)
    proc.set_timer("t", 3.0)
    sim.run_until_idle()
    assert proc.timers == [(3.0, "t", ())]


def test_cancel_timer():
    sim = Simulator()
    proc = Echo(sim)
    proc.set_timer("t", 5.0)
    assert proc.cancel_timer("t")
    sim.run_until_idle()
    assert proc.timers == []


def test_cancel_missing_timer_returns_false():
    sim = Simulator()
    proc = Echo(sim)
    assert not proc.cancel_timer("nope")


def test_has_timer():
    sim = Simulator()
    proc = Echo(sim)
    assert not proc.has_timer("t")
    proc.set_timer("t", 5.0)
    assert proc.has_timer("t")
    sim.run_until_idle()
    assert not proc.has_timer("t")


def test_kill_cancels_timers():
    sim = Simulator()
    proc = Echo(sim)
    proc.set_timer("t", 5.0)
    proc.kill()
    sim.run_until_idle()
    assert proc.timers == []


def test_timer_can_rearm_itself():
    sim = Simulator()

    class Heartbeat(Echo):
        def on_timer(self, tag, *args):
            super().on_timer(tag, *args)
            if len(self.timers) < 3:
                self.set_timer(tag, 2.0)

    proc = Heartbeat(sim)
    proc.set_timer("hb", 2.0)
    sim.run_until_idle()
    assert [t for t, __, __ in proc.timers] == [2.0, 4.0, 6.0]


def test_base_class_requires_on_message():
    sim = Simulator()
    proc = Process(sim, "raw")
    with pytest.raises(NotImplementedError):
        proc.deliver("x")


def test_trace_records_through_process():
    sim = Simulator()
    proc = Echo(sim, name="tracer")
    proc.trace("test", "did-something", value=7)
    records = sim.trace.select(source="tracer")
    assert len(records) == 1
    assert records[0].event == "did-something"
    assert records[0].detail("value") == 7
