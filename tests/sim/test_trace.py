"""Unit tests for the trace recorder."""

from repro.sim import Simulator, TraceRecorder


def test_record_and_select():
    tr = TraceRecorder()
    tr.record(1.0, "net", "node-a", "send", dst="node-b")
    tr.record(2.0, "net", "node-b", "recv", src="node-a")
    tr.record(3.0, "proto", "node-a", "order")
    assert len(tr) == 3
    assert len(tr.select(category="net")) == 2
    assert len(tr.select(source="node-a")) == 2
    assert len(tr.select(event="order")) == 1
    assert tr.select(category="net", source="node-b")[0].detail("src") == "node-a"


def test_detail_default():
    tr = TraceRecorder()
    tr.record(0.0, "c", "s", "e", k=1)
    rec = tr.records[0]
    assert rec.detail("k") == 1
    assert rec.detail("missing", "fallback") == "fallback"


def test_muted_categories_not_stored():
    tr = TraceRecorder()
    tr.mute("noise")
    tr.record(0.0, "noise", "s", "e")
    tr.record(0.0, "keep", "s", "e")
    assert len(tr) == 1
    tr.unmute("noise")
    tr.record(0.0, "noise", "s", "e2")
    assert len(tr) == 2


def test_disabled_recorder_stores_nothing():
    tr = TraceRecorder(enabled=False)
    tr.record(0.0, "c", "s", "e")
    assert len(tr) == 0


def test_listener_sees_muted_records():
    tr = TraceRecorder()
    tr.mute("noise")
    seen = []
    tr.add_listener(lambda rec: seen.append(rec.event))
    tr.record(0.0, "noise", "s", "hidden")
    assert seen == ["hidden"]
    assert len(tr) == 0


def test_fingerprint_is_stable_and_order_sensitive():
    a, b, c = TraceRecorder(), TraceRecorder(), TraceRecorder()
    a.record(1.0, "c", "s", "x")
    a.record(2.0, "c", "s", "y")
    b.record(1.0, "c", "s", "x")
    b.record(2.0, "c", "s", "y")
    c.record(2.0, "c", "s", "y")
    c.record(1.0, "c", "s", "x")
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_render_contains_fields():
    tr = TraceRecorder()
    tr.record(1.5, "cat", "src", "evt", key="val")
    text = tr.render()
    assert "cat" in text and "src" in text and "evt" in text and "key='val'" in text


def test_simulator_trace_integration():
    sim = Simulator()
    sim.schedule(5.0, lambda: sim.trace.record(sim.now, "c", "s", "fired"))
    sim.run_until_idle()
    assert sim.trace.records[0].time == 5.0


# ----------------------------------------------------------------------
# zero-cost disabled mode
# ----------------------------------------------------------------------
def test_disabled_swaps_record_for_noop_and_reenabling_restores():
    tr = TraceRecorder()
    tr.record(0.0, "c", "s", "before")
    tr.enabled = False
    assert "record" in tr.__dict__  # the instance-level no-op is bound
    tr.record(1.0, "c", "s", "while-disabled", k=1)
    assert len(tr) == 1
    tr.enabled = True
    assert "record" not in tr.__dict__  # the real method is back
    tr.record(2.0, "c", "s", "after")
    assert [rec.event for rec in tr] == ["before", "after"]


def test_disabled_recorder_skips_listeners_too():
    tr = TraceRecorder(enabled=False)
    seen = []
    tr.add_listener(seen.append)
    tr.record(0.0, "c", "s", "e")
    assert seen == []
    tr.enabled = True
    tr.record(0.0, "c", "s", "e2")
    assert [rec.event for rec in seen] == ["e2"]


def test_disabled_constructor_classmethod():
    tr = TraceRecorder.disabled()
    assert tr.enabled is False
    tr.record(0.0, "c", "s", "e")
    assert len(tr) == 0
