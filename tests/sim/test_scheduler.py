"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import SimulationLimitExceeded, Simulator
from repro.sim.errors import SchedulingInPastError


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(9.0, fired.append, "c")
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(3.0, fired.append, label)
    sim.run_until_idle()
    assert fired == list("abcde")


def test_priority_overrides_insertion_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "later", priority=1)
    sim.schedule(3.0, fired.append, "sooner", priority=0)
    sim.run_until_idle()
    assert fired == ["sooner", "later"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [7.5]


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append(("first", sim.now))
        sim.schedule(2.0, second)

    def second():
        fired.append(("second", sim.now))

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert fired == [("first", 1.0), ("second", 3.0)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingInPastError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SchedulingInPastError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    assert handle.cancel()
    sim.run_until_idle()
    assert fired == []


def test_cancel_twice_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.cancel()
    assert not handle.cancel()


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "at-boundary")
    sim.schedule(5.0001, fired.append, "beyond")
    sim.run(until=5.0)
    assert fired == ["at-boundary"]
    assert sim.now == 5.0


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_resumes_after_until():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.schedule(15.0, fired.append, "b")
    sim.run(until=10.0)
    assert fired == ["a"]
    sim.run(until=20.0)
    assert fired == ["a", "b"]


def test_max_events_guard_raises():
    sim = Simulator()

    def loop():
        sim.schedule(1.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationLimitExceeded):
        sim.run(max_events=100)


def test_step_runs_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert fired == ["a", "b"]
    assert not sim.step()


def test_events_processed_counter():
    sim = Simulator()
    for __ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    assert sim.events_processed == 4


def test_rng_streams_are_independent():
    sim = Simulator(seed=42)
    a_first = sim.rng("a").random()
    __ = sim.rng("b").random()
    sim2 = Simulator(seed=42)
    # Drawing from "b" first must not perturb "a"'s sequence.
    __ = sim2.rng("b").random()
    a_first2 = sim2.rng("a").random()
    assert a_first == a_first2


def test_rng_streams_depend_on_seed():
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_rng_same_name_returns_same_stream():
    sim = Simulator()
    assert sim.rng("s") is sim.rng("s")


# ----------------------------------------------------------------------
# edge cases: lazy cancellation, boundaries, limits, rng determinism
# ----------------------------------------------------------------------
def test_pending_events_counts_cancelled_events():
    """Cancellation is lazy: the event stays in the heap (and in
    pending_events) until the run loop pops past it."""
    sim = Simulator()
    keep = sim.schedule(2.0, lambda: None)
    victim = sim.schedule(1.0, lambda: None)
    victim.cancel()
    assert sim.pending_events == 2
    sim.run_until_idle()
    assert sim.pending_events == 0
    assert sim.events_processed == 1
    assert keep.time == 2.0


def test_run_until_skips_cancelled_head_without_firing():
    sim = Simulator()
    fired = []
    head = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "live")
    head.cancel()
    sim.run(until=2.0)
    assert fired == ["live"]
    assert sim.pending_events == 0


def test_run_until_boundary_inclusive_and_later_event_stays_pending():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "at")
    sim.schedule(5.0 + 1e-9, fired.append, "after")
    sim.run(until=5.0)
    assert fired == ["at"]
    assert sim.now == 5.0
    assert sim.pending_events == 1  # the "after" event survives for the next run


def test_max_events_raises_simulation_limit_exceeded_with_progress():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    with pytest.raises(SimulationLimitExceeded):
        sim.run(max_events=3)
    assert sim.events_processed == 3
    assert sim.pending_events == 7
    # the simulation is still usable after the guard fires
    sim.run()
    assert sim.events_processed == 10


def test_rng_streams_deterministic_across_identically_seeded_runs():
    """Two identically-seeded simulators yield identical sequences on
    every derived stream, regardless of interleaving."""

    def draws(sim):
        out = []
        for __ in range(50):
            out.append(sim.rng("alpha").random())
            out.append(sim.rng("beta").getrandbits(16))
            out.append(sim.rng("gamma").uniform(0, 9))
        return out

    assert draws(Simulator(seed=123)) == draws(Simulator(seed=123))
    assert draws(Simulator(seed=123)) != draws(Simulator(seed=124))
