"""Unit tests for the CPU and thread-pool queueing models."""

import pytest

from repro.sim import CpuResource, Simulator, ThreadPool


def test_single_core_serialises_jobs():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    cpu.execute(10.0, lambda: done.append(("a", sim.now)))
    cpu.execute(10.0, lambda: done.append(("b", sim.now)))
    sim.run_until_idle()
    assert done == [("a", 10.0), ("b", 20.0)]


def test_dual_core_runs_two_jobs_in_parallel():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2)
    done = []
    for label in ("a", "b", "c"):
        cpu.execute(10.0, lambda lab=label: done.append((lab, sim.now)))
    sim.run_until_idle()
    assert done == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_zero_cost_job_completes_immediately_when_idle():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    cpu.execute(0.0, lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [0.0]


def test_fcfs_ordering_preserved():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    cpu.execute(5.0, lambda: done.append("first"))
    cpu.execute(1.0, lambda: done.append("second"))
    cpu.execute(1.0, lambda: done.append("third"))
    sim.run_until_idle()
    assert done == ["first", "second", "third"]


def test_cpu_stats():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    cpu.execute(10.0, lambda: None)
    cpu.execute(10.0, lambda: None)
    sim.run_until_idle()
    assert cpu.stats.jobs_submitted == 2
    assert cpu.stats.jobs_completed == 2
    assert cpu.stats.busy_time == 20.0
    # The second job waited 10ms in queue.
    assert cpu.stats.total_queue_wait == 10.0
    assert cpu.stats.mean_queue_wait() == 5.0
    assert cpu.stats.utilisation(elapsed=20.0, servers=1) == 1.0


def test_invalid_core_count_rejected():
    with pytest.raises(ValueError):
        CpuResource(Simulator(), cores=0)


def test_negative_service_time_rejected():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    with pytest.raises(ValueError):
        cpu.execute(-1.0, lambda: None)


def test_pool_limits_concurrency():
    sim = Simulator()
    cpu = CpuResource(sim, cores=8)
    pool = ThreadPool(sim, cpu, size=2)
    done = []
    for label in ("a", "b", "c", "d"):
        pool.submit(10.0, lambda lab=label: done.append((lab, sim.now)))
    sim.run_until_idle()
    # Only 2 tasks at a time even though 8 cores available.
    assert done == [("a", 10.0), ("b", 10.0), ("c", 20.0), ("d", 20.0)]


def test_pool_wider_than_cpu_is_cpu_bound():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2)
    pool = ThreadPool(sim, cpu, size=10)
    done = []
    for i in range(4):
        pool.submit(10.0, lambda i=i: done.append((i, sim.now)))
    sim.run_until_idle()
    assert [t for __, t in done] == [10.0, 10.0, 20.0, 20.0]


def test_pool_queue_length_visible_while_saturated():
    sim = Simulator()
    cpu = CpuResource(sim, cores=4)
    pool = ThreadPool(sim, cpu, size=1)
    for __ in range(3):
        pool.submit(10.0, lambda: None)
    assert pool.active_threads == 1
    assert pool.queue_length == 2
    sim.run_until_idle()
    assert pool.active_threads == 0
    assert pool.queue_length == 0
    assert pool.stats.max_queue_length == 2


def test_pool_invalid_size_rejected():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    with pytest.raises(ValueError):
        ThreadPool(sim, cpu, size=0)


def test_pool_stats_count_completions():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    pool = ThreadPool(sim, cpu, size=10)
    for __ in range(5):
        pool.submit(2.0, lambda: None)
    sim.run_until_idle()
    assert pool.stats.jobs_submitted == 5
    assert pool.stats.jobs_completed == 5
