"""Property-based determinism tests: same seed => identical runs.

Determinism underpins the paper's requirement R1 (replicas must be
deterministic state machines); these tests make sure the kernel itself
cannot introduce divergence between the FSO replica pair.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CpuResource, Simulator, ThreadPool


def _random_run(seed, schedule_plan):
    """Execute a plan of (delay, jitter-stream) events and fingerprint."""
    sim = Simulator(seed=seed)
    rng = sim.rng("plan")

    def fire(label):
        jitter = rng.uniform(0, 5)
        sim.trace.record(sim.now, "run", "proc", "fire", label=label, jitter=round(jitter, 9))
        if rng.random() < 0.3:
            sim.schedule(jitter, fire, label + 1000)

    for delay in schedule_plan:
        sim.schedule(delay, fire, int(delay * 1000) % 997)
    sim.run_until_idle(max_events=50_000)
    return sim.trace.fingerprint()


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    plan=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_same_seed_same_fingerprint(seed, plan):
    assert _random_run(seed, plan) == _random_run(seed, plan)


@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired_times = []
    for delay in delays:
        sim.schedule(delay, lambda: fired_times.append(sim.now))
    sim.run_until_idle()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(
    service_times=st.lists(
        st.floats(min_value=0, max_value=50, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    cores=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_cpu_conservation(service_times, cores):
    """Work conservation: total busy time equals the sum of service times
    and all jobs complete."""
    sim = Simulator()
    cpu = CpuResource(sim, cores=cores)
    for service in service_times:
        cpu.execute(service, lambda: None)
    sim.run_until_idle()
    assert cpu.stats.jobs_completed == len(service_times)
    assert abs(cpu.stats.busy_time - sum(service_times)) < 1e-6
    # Makespan is at least the critical lower bounds.
    if service_times:
        assert sim.now >= max(service_times) - 1e-9
        assert sim.now >= sum(service_times) / cores - 1e-6


@given(
    n_tasks=st.integers(min_value=1, max_value=40),
    pool_size=st.integers(min_value=1, max_value=12),
    cores=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_pool_never_exceeds_size(n_tasks, pool_size, cores):
    sim = Simulator()
    cpu = CpuResource(sim, cores=cores)
    pool = ThreadPool(sim, cpu, size=pool_size)
    peak = [0]

    def track():
        peak[0] = max(peak[0], pool.active_threads)

    for __ in range(n_tasks):
        pool.submit(5.0, track)
    sim.run_until_idle()
    assert peak[0] <= pool_size
    assert pool.stats.jobs_completed == n_tasks
