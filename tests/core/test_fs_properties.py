"""Property-based tests over the fail-signal layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FsoRole

from tests.core.conftest import FsRig


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    adds=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=15),
)
@settings(max_examples=25, deadline=None)
def test_outputs_match_sequential_semantics(seed, adds):
    """Property: in failure-free runs the FS process is observationally a
    single correct process -- the sink sees exactly the prefix sums, once
    each, in order, and no fail-signal."""
    rig = FsRig(seed=seed)
    for n in adds:
        rig.submit("add", n)
    rig.run()
    expected = []
    total = 0
    for n in adds:
        total += n
        expected.append(total)
    assert rig.sink.values == expected
    assert not rig.fs.signaled
    assert rig.inbox.fail_signals_received == 0


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_leader=st.booleans(),
    pre=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_crash_always_produces_signal_when_response_expected(seed, crash_leader, pre):
    """Property (fs1): whatever the timing and history, a crashed node
    plus one more input always yields a fail-signal, and the environment
    never sees a wrong value."""
    rig = FsRig(seed=seed)
    for i in range(pre):
        rig.submit("add", 1)
    rig.run()
    rig.fs.crash_node(FsoRole.LEADER if crash_leader else FsoRole.FOLLOWER)
    rig.submit("add", 1)
    rig.run()
    assert rig.fail_signals == ["counter"]
    # Values seen are a prefix of the correct sequence.
    assert rig.sink.values == list(range(1, len(rig.sink.values) + 1))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_deterministic_replay(seed):
    """Two runs with identical seeds produce identical traces."""

    def run():
        rig = FsRig(seed=seed)
        for n in (3, 1, 4, 1, 5):
            rig.submit("add", n)
        rig.run()
        return rig.sim.trace.fingerprint(), tuple(rig.sink.values)

    assert run() == run()
