"""Shared rig for fail-signal tests: one FS process wrapping a simple
deterministic counter, one client node with an inbox and a sink."""

import pytest

from repro.corba import Node, ObjectRef, Servant
from repro.core import FsEnvironment, FsoConfig
from repro.core.fso import Fso
from repro.net import ConstantDelay, Network
from repro.sim import Simulator

#: The logical reference the wrapped replicas address their outputs to.
SINK_LOGICAL = ObjectRef(node="logical", key="sink")


class CounterReplica(Servant):
    """Deterministic state machine: ``add(n)`` emits the running total."""

    def __init__(self):
        self.total = 0

    def add(self, n):
        self.total += n
        self.orb.oneway(SINK_LOGICAL, "result", self.total)

    def add_quiet(self, n):
        """An input that produces no output."""
        self.total += n

    def add_twice(self, n):
        """An input that produces two outputs."""
        self.total += n
        self.orb.oneway(SINK_LOGICAL, "result", self.total)
        self.orb.oneway(SINK_LOGICAL, "result", -self.total)


class Sink(Servant):
    """Collects what the FS process's environment actually sees."""

    def __init__(self):
        self.results = []

    def result(self, value):
        self.results.append((self.orb.sim.now, value))

    @property
    def values(self):
        return [v for __, v in self.results]


class FsRig:
    """A wired single-FS-process world."""

    def __init__(
        self,
        seed=0,
        config=None,
        leader_fso_class=None,
        follower_fso_class=None,
    ):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim, default_delay=ConstantDelay(1.0))
        self.node_a = Node(self.sim, "node-a", self.net)
        self.node_b = Node(self.sim, "node-b", self.net)
        self.client = Node(self.sim, "client", self.net)
        self.env = FsEnvironment(self.sim, config=config or FsoConfig(delta=2.0))
        self.replica_a = CounterReplica()
        self.replica_b = CounterReplica()
        self.fs = self.env.make_fail_signal(
            "counter",
            self.node_a,
            self.node_b,
            self.replica_a,
            self.replica_b,
            leader_fso_class=leader_fso_class or Fso,
            follower_fso_class=follower_fso_class or Fso,
        )
        self.sink = Sink()
        self.sink_ref = self.client.activate("sink", self.sink)
        self.inbox = self.env.make_inbox(self.client, "inbox")
        self.inbox.local_rewrites["sink"] = self.sink_ref
        self.fail_signals = []
        self.inbox.on_fail_signal = self.fail_signals.append
        self.env.routes.set_route("sink", [self.inbox.ref])
        self.fs.set_signal_destinations([self.inbox.ref])
        self._input_counter = 0

    def submit(self, method, *args):
        self._input_counter += 1
        self.fs.submit(self.client, method, args, ("test", self._input_counter))

    def run(self, until=None):
        if until is None:
            self.sim.run_until_idle()
        else:
            self.sim.run(until=until)


@pytest.fixture
def rig():
    return FsRig()
