"""Failure behaviour of fail-signal pairs: fs1 and fs2 semantics.

fs1: whenever the FS process cannot produce a correct response, it
outputs its fail-signal.  fs2: a faulty FS process may emit its
fail-signal at arbitrary times.  Nothing else may ever be emitted --
in particular, no corrupted output may carry a valid double signature.
"""

import pytest

from repro.core import ByzantineFso, FailSilentFso, FsoRole

from tests.core.conftest import FsRig


def _byzantine_rig(faulty_role=FsoRole.FOLLOWER, **kwargs):
    if faulty_role is FsoRole.FOLLOWER:
        rig = FsRig(follower_fso_class=ByzantineFso, **kwargs)
        return rig, rig.fs.follower
    rig = FsRig(leader_fso_class=ByzantineFso, **kwargs)
    return rig, rig.fs.leader


def test_follower_node_crash_yields_fail_signal(rig):
    rig.submit("add", 1)
    rig.run()
    assert rig.sink.values == [1]
    rig.fs.crash_node(FsoRole.FOLLOWER)
    rig.submit("add", 2)
    rig.run()
    # The leader's Compare timed out and signalled; the environment got
    # a fail-signal instead of a response (fs1).
    assert rig.fs.leader.signaled
    assert rig.fs.leader.signal_reason == "compare-timeout"
    assert rig.fail_signals == ["counter"]
    assert rig.sink.values == [1]


def test_leader_node_crash_yields_fail_signal(rig):
    rig.submit("add", 1)
    rig.run()
    rig.fs.crash_node(FsoRole.LEADER)
    rig.submit("add", 2)
    rig.run()
    # The follower saw an input the leader never ordered: t2 expired.
    assert rig.fs.follower.signaled
    assert rig.fs.follower.signal_reason == "leader-silent"
    assert rig.fail_signals == ["counter"]
    assert rig.sink.values == [1]


def test_corrupted_output_never_escapes():
    """A faulty replica's corrupted output mismatches at comparison; the
    destination sees a fail-signal, never the corrupted value."""
    rig, faulty = _byzantine_rig(FsoRole.FOLLOWER)
    rig.submit("add", 1)
    rig.run()
    faulty.go_byzantine(corrupt_outputs=True)
    rig.submit("add", 2)
    rig.run()
    assert rig.fs.signaled
    assert rig.fail_signals == ["counter"]
    assert rig.sink.values == [1]
    assert rig.inbox.rejected == 0  # nothing invalid even reached it


def test_corrupting_leader_also_caught():
    rig, faulty = _byzantine_rig(FsoRole.LEADER)
    faulty.go_byzantine(corrupt_outputs=True)
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.signaled
    assert rig.sink.values == []
    assert rig.fail_signals == ["counter"]


def test_dropped_singles_caught_by_timeout():
    rig, faulty = _byzantine_rig(FsoRole.FOLLOWER)
    faulty.go_byzantine(drop_singles=True)
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.leader.signaled
    assert rig.fs.leader.signal_reason == "compare-timeout"
    assert rig.fail_signals == ["counter"]
    # The faulty follower still countersigned the leader's genuine
    # single, so the *correct* output may escape alongside the signal --
    # exactly the fs1 model: a correct process whose responses pass
    # through an adversary that substitutes a subset with fail-signals.
    assert rig.sink.values in ([], [1])


def test_muted_leader_caught_by_follower_t2():
    rig, faulty = _byzantine_rig(FsoRole.LEADER)
    faulty.go_byzantine(mute_lan=True)
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.follower.signaled
    assert rig.fs.follower.signal_reason == "leader-silent"


def test_forged_signature_rejected_and_timeout_fires():
    """A faulty node cannot forge its peer's signature (A5): the forged
    single is ignored and the comparison timeout catches the failure."""
    rig, faulty = _byzantine_rig(FsoRole.FOLLOWER)
    faulty.go_byzantine(forge_signature=True)
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.leader.signaled
    assert rig.fs.leader.signal_reason == "compare-timeout"
    assert rig.fail_signals == ["counter"]
    # Only the correct value may ever escape (see drop_singles test).
    assert rig.sink.values in ([], [1])


def test_scrambled_order_manifests_as_mismatch():
    """A faulty leader processing inputs out of order is caught because
    the replicas' outputs no longer match (Appendix A, last paragraph)."""
    rig, faulty = _byzantine_rig(FsoRole.LEADER)
    faulty.go_byzantine(scramble_order=True)
    rig.submit("add", 1)
    rig.submit("add", 10)
    rig.run()
    assert rig.fs.signaled
    # No corrupted totals escaped.
    assert all(v in (1, 11) for v in rig.sink.values)


def test_fs2_arbitrary_signal(rig):
    """A healthy FSO forced to emit its fail-signal (fs2): receivers see
    a valid fail-signal; that is allowed behaviour for a faulty FS
    process and receivers correctly treat the source as faulty."""
    rig.fs.leader.inject_arbitrary_signal()
    rig.run()
    assert rig.fail_signals == ["counter"]
    assert rig.inbox.rejected == 0


def test_signaling_fso_answers_inputs_with_fail_signal(rig):
    rig.fs.crash_node(FsoRole.FOLLOWER)
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.leader.signaled
    # Further inputs produce no outputs, only (deduplicated) signals.
    rig.submit("add", 2)
    rig.run()
    assert rig.sink.values == []
    assert rig.inbox.fail_signals_received == 1  # dedup by source


def test_fail_signal_is_attributable_and_unforgeable(rig):
    """The fail-signal carries both Compare signatures; a third party
    cannot synthesise one for an FS process it does not control."""
    from repro.core.messages import FailSignal
    from repro.crypto.signing import Signature, DoubleSigned

    fake = DoubleSigned(
        payload=FailSignal("counter"),
        first=Signature("counter#A", b"\x00" * 32),
        second=Signature("counter#B", b"\x00" * 32),
    )
    rig.client.orb.oneway(rig.inbox.ref, "receiveNew", fake)
    rig.run()
    assert rig.inbox.fail_signals_received == 0
    assert rig.inbox.rejected == 1
    assert rig.fail_signals == []


def test_fail_silent_variant_stops_quietly():
    rig = FsRig(follower_fso_class=FailSilentFso, leader_fso_class=FailSilentFso)
    rig.fs.crash_node(FsoRole.FOLLOWER)
    rig.submit("add", 1)
    rig.run()
    # The leader detected the failure and stopped -- but told nobody.
    assert rig.fs.leader.signaled
    assert rig.fs.leader.signal_reason.startswith("silent:")
    assert rig.inbox.fail_signals_received == 0
    assert rig.sink.values == []


def test_crash_before_any_input_silent_until_response_expected(rig):
    """fs1 promises a signal when a *response is expected*; a crashed
    pair with no inputs owes nothing and signals nothing."""
    rig.fs.crash_node(FsoRole.FOLLOWER)
    rig.run(until=10_000)
    assert not rig.fs.leader.signaled
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.leader.signaled


def test_unknown_fault_flag_rejected():
    rig, faulty = _byzantine_rig(FsoRole.FOLLOWER)
    with pytest.raises(AttributeError):
        faulty.go_byzantine(explode=True)
