"""Unit tests for the FS output inbox."""

import random

from repro.corba import Node, ObjectRef, Servant
from repro.core import FsOutputInbox, FsRegistry
from repro.core.messages import FailSignal, FsOutput
from repro.crypto import HmacScheme, KeyStore
from repro.net import ConstantDelay, Network
from repro.sim import Simulator


class Target(Servant):
    def __init__(self):
        self.calls = []

    def deliver(self, *args):
        self.calls.append(args)


def _rig():
    sim = Simulator(seed=0)
    net = Network(sim, default_delay=ConstantDelay(1.0))
    node = Node(sim, "n", net)
    keystore = KeyStore(HmacScheme())
    registry = FsRegistry()
    signer_a = keystore.new_signer("p#A", random.Random(1))
    signer_b = keystore.new_signer("p#B", random.Random(2))
    registry.register("p", "p#A", "p#B")
    inbox = FsOutputInbox(keystore, registry)
    node.activate("inbox", inbox)
    target = Target()
    target_ref = node.activate("target", target)
    inbox.local_rewrites["logical-target"] = target_ref
    return sim, node, inbox, target, signer_a, signer_b


def _output(seq=1, idx=0, args=(42,)):
    return FsOutput(
        fs_id="p",
        input_seq=seq,
        output_idx=idx,
        target=ObjectRef(node="logical", key="logical-target"),
        method="deliver",
        args=args,
    )


def test_valid_output_forwarded_once():
    sim, node, inbox, target, a, b = _rig()
    ds = b.countersign(a.sign_payload(_output()))
    inbox.receiveNew(ds)
    inbox.receiveNew(ds)  # the second Compare's copy
    sim.run_until_idle()
    assert target.calls == [(42,)]
    assert inbox.outputs_forwarded == 1
    assert inbox.rejected == 0


def test_distinct_outputs_both_forwarded():
    sim, node, inbox, target, a, b = _rig()
    inbox.receiveNew(b.countersign(a.sign_payload(_output(seq=1, args=(1,)))))
    inbox.receiveNew(b.countersign(a.sign_payload(_output(seq=2, args=(2,)))))
    sim.run_until_idle()
    assert target.calls == [(1,), (2,)]


def test_bad_signature_rejected():
    sim, node, inbox, target, a, b = _rig()
    good = b.countersign(a.sign_payload(_output()))
    from repro.crypto.signing import DoubleSigned

    tampered = DoubleSigned(_output(args=(99,)), good.first, good.second)
    inbox.receiveNew(tampered)
    sim.run_until_idle()
    assert target.calls == []
    assert inbox.rejected == 1


def test_unknown_source_rejected():
    sim, node, inbox, target, a, b = _rig()
    ghost = FsOutput(
        fs_id="ghost",
        input_seq=1,
        output_idx=0,
        target=ObjectRef(node="logical", key="logical-target"),
        method="deliver",
        args=(),
    )
    inbox.receiveNew(b.countersign(a.sign_payload(ghost)))
    sim.run_until_idle()
    assert inbox.rejected == 1


def test_non_double_signed_rejected():
    sim, node, inbox, target, a, b = _rig()
    inbox.receiveNew("junk")
    inbox.receiveNew(a.sign_payload(_output()))  # single-signed only
    assert inbox.rejected == 2


def test_fail_signal_callback_and_dedup():
    sim, node, inbox, target, a, b = _rig()
    seen = []
    inbox.on_fail_signal = seen.append
    signal = b.countersign(a.sign_payload(FailSignal("p")))
    inbox.receiveNew(signal)
    inbox.receiveNew(signal)
    assert seen == ["p"]
    assert inbox.fail_signals_received == 1
    assert inbox.signalled_sources == {"p"}


def test_unrouted_target_goes_to_literal_ref():
    sim, node, inbox, target, a, b = _rig()
    direct = FsOutput(
        fs_id="p",
        input_seq=3,
        output_idx=0,
        target=ObjectRef(node="n", key="target"),
        method="deliver",
        args=("direct",),
    )
    inbox.receiveNew(b.countersign(a.sign_payload(direct)))
    sim.run_until_idle()
    assert target.calls == [("direct",)]
