"""Unit tests for the FS interceptors."""

import pytest

from repro.corba import Node, ObjectRef, Servant
from repro.core import FanOutInterceptor, FsCaptureInterceptor, FsInput
from repro.net import ConstantDelay, Network
from repro.sim import Simulator


class Recorder(Servant):
    def __init__(self):
        self.calls = []

    def receiveNew(self, arg):
        self.calls.append(arg)

    def plain(self, *args):
        self.calls.append(args)


def _node(seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, default_delay=ConstantDelay(1.0))
    return sim, Node(sim, "n1", net), Node(sim, "n2", net)


def test_fanout_rewrites_to_all_wrappers():
    sim, n1, n2 = _node()
    fso_a, fso_b = Recorder(), Recorder()
    ref_a = n2.activate("wrap-a", fso_a)
    ref_b = n2.activate("wrap-b", fso_b)
    fanout = FanOutInterceptor(origin="client")
    fanout.wrap_target("member.gc", [ref_a, ref_b])
    n1.orb.client_interceptors.append(fanout)

    logical = ObjectRef(node="logical", key="member.gc")
    # Activating nothing under the logical key: the interceptor must
    # catch the call before address resolution.
    n1.orb.oneway(logical, "submit", "group", "svc", 42)
    sim.run_until_idle()

    assert len(fso_a.calls) == 1 and len(fso_b.calls) == 1
    input_a, input_b = fso_a.calls[0], fso_b.calls[0]
    assert isinstance(input_a, FsInput)
    assert input_a == input_b  # identical input ids pair at the follower
    assert input_a.method == "submit"
    assert input_a.args == ("group", "svc", 42)


def test_fanout_ids_unique_per_request():
    sim, n1, n2 = _node()
    fso = Recorder()
    ref = n2.activate("wrap", fso)
    fanout = FanOutInterceptor(origin="client")
    fanout.wrap_target("t", [ref])
    n1.orb.client_interceptors.append(fanout)
    logical = ObjectRef(node="logical", key="t")
    n1.orb.oneway(logical, "m")
    n1.orb.oneway(logical, "m")
    sim.run_until_idle()
    ids = [call.input_id for call in fso.calls]
    assert len(set(ids)) == 2


def test_fanout_passes_unwrapped_targets():
    sim, n1, n2 = _node()
    plain = Recorder()
    ref = n2.activate("plain", plain)
    fanout = FanOutInterceptor(origin="client")
    fanout.wrap_target("something-else", [ref])
    n1.orb.client_interceptors.append(fanout)
    n1.orb.oneway(ref, "plain", 1)
    sim.run_until_idle()
    assert plain.calls == [(1,)]


def test_fanout_requires_endpoints():
    fanout = FanOutInterceptor(origin="x")
    with pytest.raises(ValueError):
        fanout.wrap_target("k", [])


def test_capture_collects_and_absorbs():
    sim, n1, n2 = _node()
    capture = FsCaptureInterceptor()
    n1.orb.client_interceptors.insert(0, capture)

    emitter = Recorder()
    n1.activate("emitter", emitter)
    target = ObjectRef(node="logical", key="nowhere")

    def handler(value):
        emitter.orb.oneway(target, "out", value)
        emitter.orb.oneway(target, "out", value + 1)

    emitter_handler = handler

    class FakeFso:
        pass

    outputs = capture.capture(FakeFso(), emitter_handler, (10,))
    sim.run_until_idle()
    assert [req.args for req in outputs] == [(10,), (11,)]
    assert [req.method for req in outputs] == ["out", "out"]
    # Nothing actually left the node.
    assert n1.network.stats.messages_sent == 0


def test_capture_rejects_reentry():
    capture = FsCaptureInterceptor()

    class FakeFso:
        pass

    def outer():
        capture.capture(FakeFso(), inner, ())

    def inner():
        pass

    with pytest.raises(RuntimeError):
        capture.capture(FakeFso(), outer, ())


def test_capture_inactive_passes_through():
    sim, n1, n2 = _node()
    capture = FsCaptureInterceptor()
    n1.orb.client_interceptors.insert(0, capture)
    servant = Recorder()
    ref = n2.activate("r", servant)
    n1.orb.oneway(ref, "plain", 5)
    sim.run_until_idle()
    assert servant.calls == [(5,)]
