"""FS processes consuming each other's outputs.

This is the configuration FS-NewTOP depends on: every member's GC is an
FS process, and GC protocol messages travel as double-signed FS outputs
submitted to both wrapper replicas of the destination.
"""

from repro.corba import Node, ObjectRef, Servant
from repro.core import FsEnvironment, FsoRole
from repro.net import ConstantDelay, Network
from repro.sim import Simulator

SINK_LOGICAL = ObjectRef(node="logical", key="sink")
STAGE2_LOGICAL = ObjectRef(node="logical", key="stage2.target")


class Doubler(Servant):
    """Stage 1: doubles its input and forwards to stage 2."""

    def double(self, n):
        self.orb.oneway(STAGE2_LOGICAL, "report", n * 2)


class Reporter(Servant):
    """Stage 2: adds ten and reports to the sink."""

    def report(self, n):
        self.orb.oneway(SINK_LOGICAL, "result", n + 10)


class Sink(Servant):
    def __init__(self):
        self.values = []

    def result(self, value):
        self.values.append(value)


def _build(seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, default_delay=ConstantDelay(1.0))
    nodes = {name: Node(sim, name, net) for name in ("a1", "a2", "b1", "b2", "client")}
    env = FsEnvironment(sim)
    stage1 = env.make_fail_signal("stage1", nodes["a1"], nodes["a2"], Doubler(), Doubler())
    stage2 = env.make_fail_signal("stage2", nodes["b1"], nodes["b2"], Reporter(), Reporter())
    sink = Sink()
    sink_ref = nodes["client"].activate("sink", sink)
    inbox = env.make_inbox(nodes["client"], "inbox")
    inbox.local_rewrites["sink"] = sink_ref
    signals = []
    inbox.on_fail_signal = signals.append
    # Outputs aimed at stage2's logical identity go to both its FSOs;
    # outputs aimed at the sink go to the client's inbox.
    env.routes.set_route("stage2.target", stage2.refs)
    env.routes.set_route("sink", [inbox.ref])
    env.broadcast_signal_destinations([inbox.ref])
    return sim, env, stage1, stage2, sink, inbox, signals, nodes


def test_chained_fs_processes_deliver_once():
    sim, env, stage1, stage2, sink, inbox, signals, nodes = _build()
    stage1.submit(nodes["client"], "double", (5,), ("in", 1))
    sim.run_until_idle()
    assert sink.values == [20]  # (5*2)+10, exactly once
    assert not stage1.signaled and not stage2.signaled
    assert signals == []


def test_chain_preserves_order():
    sim, env, stage1, stage2, sink, inbox, signals, nodes = _build(seed=3)
    for i in range(10):
        stage1.submit(nodes["client"], "double", (i,), ("in", i))
    sim.run_until_idle()
    assert sink.values == [i * 2 + 10 for i in range(10)]


def test_downstream_sees_fail_signal_of_upstream():
    sim, env, stage1, stage2, sink, inbox, signals, nodes = _build()
    stage1.submit(nodes["client"], "double", (1,), ("in", 1))
    sim.run_until_idle()
    stage1.crash_node(FsoRole.FOLLOWER)
    stage1.submit(nodes["client"], "double", (2,), ("in", 2))
    sim.run_until_idle()
    assert signals == ["stage1"]
    assert sink.values == [12]  # only the pre-crash output


def test_dedup_at_downstream_fs_process():
    """Stage 2 receives four copies of each stage-1 output (two Compares
    x two wrapper replicas) but processes it once."""
    sim, env, stage1, stage2, sink, inbox, signals, nodes = _build()
    stage1.submit(nodes["client"], "double", (3,), ("in", 1))
    sim.run_until_idle()
    assert sink.values == [16]
    assert stage2.leader.inputs_ordered == 1


def test_tampered_fs_output_rejected_downstream():
    """A double-signed output altered in transit fails verification at
    the destination FSOs and is dropped."""
    sim, env, stage1, stage2, sink, inbox, signals, nodes = _build()
    from repro.core.messages import FsOutput
    from repro.crypto.signing import DoubleSigned

    def tamper(envelope):
        payload = envelope.payload
        args = getattr(payload, "args", ())
        for arg in args:
            if isinstance(arg, DoubleSigned) and isinstance(arg.payload, FsOutput):
                # Flip the carried value; signature now stale.
                return False  # drop instead of rewrite: rewrite test below
        return True

    # Simpler, deterministic: inject a hand-tampered message directly.
    original = None
    stage1.submit(nodes["client"], "double", (4,), ("in", 1))
    sim.run_until_idle()
    assert sink.values == [18]
    # Build a forged copy claiming a different value.
    forged_payload = FsOutput(
        fs_id="stage1",
        input_seq=99,
        output_idx=0,
        target=STAGE2_LOGICAL,
        method="report",
        args=(1_000_000,),
    )
    from repro.crypto.signing import Signature

    forged = DoubleSigned(
        payload=forged_payload,
        first=Signature("stage1#A", b"\x00" * 32),
        second=Signature("stage1#B", b"\x01" * 32),
    )
    for ref in stage2.refs:
        nodes["client"].orb.oneway(ref, "receiveNew", forged)
    sim.run_until_idle()
    assert sink.values == [18]  # forgery never became an input
    assert not stage2.signaled
