"""The batched compare path: accumulator units and pair integration."""

import pytest

from repro.core import FsoConfig
from repro.core.batching import BatchAccumulator, BatchPolicy
from repro.core.faults import ByzantineFso

from tests.core.conftest import FsRig

# ----------------------------------------------------------------------
# BatchAccumulator units (no simulator needed)
# ----------------------------------------------------------------------


class AccumRig:
    """Accumulator with recorded callbacks."""

    def __init__(self, **policy):
        self.flushed = []
        self.timers_started = []
        self.timers_cancelled = []
        self.accum = BatchAccumulator(
            BatchPolicy(**policy),
            flush_fn=lambda key, entries: self.flushed.append((key, list(entries))),
            start_timer=lambda key, no, delay: self.timers_started.append((key, no, delay)),
            cancel_timer=lambda key, no: self.timers_cancelled.append((key, no)),
        )


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_delay_ms=0.0)
    with pytest.raises(ValueError):
        BatchPolicy(max_inflight=0)


def test_flush_on_size():
    rig = AccumRig(max_batch=3)
    for i in range(3):
        rig.accum.add(("n", "t"), i)
    assert rig.flushed == [(("n", "t"), [0, 1, 2])]
    # The open batch's delay timer was armed once and cancelled at flush.
    assert rig.timers_started == [(("n", "t"), 0, 4.0)]
    assert rig.timers_cancelled == [(("n", "t"), 0)]


def test_flush_on_delay_is_a_hard_bound():
    rig = AccumRig(max_batch=8, max_inflight=1)
    rig.accum.add(("n", "a"), "x")
    # Fill the pipeline so a size flush would defer...
    rig.accum.in_flight = 1
    # ...but the delay timer flushes regardless (the timeout slack the
    # compare stage adds assumes max_delay_ms is a hard bound).
    rig.accum.on_delay_expired(("n", "a"), 0)
    assert rig.flushed == [(("n", "a"), ["x"])]


def test_stale_delay_timer_ignored():
    rig = AccumRig(max_batch=2)
    rig.accum.add(("n", "a"), 1)
    rig.accum.add(("n", "a"), 2)  # size flush; generation 0 closed
    rig.accum.add(("n", "a"), 3)  # generation 1 opens
    rig.accum.on_delay_expired(("n", "a"), 0)  # stale
    assert len(rig.flushed) == 1
    rig.accum.on_delay_expired(("n", "a"), 1)  # current
    assert rig.flushed[1] == (("n", "a"), [3])


def test_size_flush_defers_to_inflight_cap_until_retire():
    rig = AccumRig(max_batch=2, max_inflight=1)
    rig.accum.add(("n", "a"), 1)
    rig.accum.add(("n", "a"), 2)  # flush #1, occupies the only slot
    rig.accum.add(("n", "b"), 3)
    rig.accum.add(("n", "b"), 4)  # size reached but deferred
    assert len(rig.flushed) == 1
    assert rig.accum.deferrals == 1
    rig.accum.retire_batch()  # slot freed -> deferred flush runs
    assert rig.flushed[1] == (("n", "b"), [3, 4])
    assert rig.accum.in_flight == 1


def test_barrier_flushes_everything_past_the_cap():
    rig = AccumRig(max_batch=8, max_inflight=1)
    rig.accum.add(("n", "a"), 1)
    rig.accum.add(("n", "b"), 2)
    rig.accum.in_flight = 1
    rig.accum.barrier()
    assert sorted(key for key, _ in rig.flushed) == [("n", "a"), ("n", "b")]


def test_clear_returns_timers_to_cancel():
    rig = AccumRig(max_batch=8)
    rig.accum.add(("n", "a"), 1)
    rig.accum.add(("n", "b"), 2)
    timers = rig.accum.clear()
    assert sorted(timers) == [(("n", "a"), 0), (("n", "b"), 1)]
    assert rig.accum.pending_count() == 0


def test_statistics():
    rig = AccumRig(max_batch=2)
    for i in range(4):
        rig.accum.add(("n", "a"), i)
    rig.accum.add(("n", "a"), 99)
    rig.accum.on_delay_expired(("n", "a"), 2)
    assert rig.accum.batches_flushed == 3
    assert rig.accum.outputs_flushed == 5
    assert rig.accum.max_batch_flushed == 2
    assert rig.accum.mean_batch_size() == pytest.approx(5 / 3)


# ----------------------------------------------------------------------
# pair integration: the rig with batching switched on
# ----------------------------------------------------------------------

BATCHED = FsoConfig(delta=2.0, batch_max=4, batch_delay_ms=4.0, batch_inflight=4)


def test_batched_outputs_reach_destination_exactly_once_in_order():
    rig = FsRig(config=BATCHED)
    for n in range(1, 13):
        rig.submit("add", n)
    rig.run()
    assert rig.sink.values == [sum(range(1, k + 1)) for k in range(1, 13)]
    assert rig.inbox.outputs_forwarded == 12
    assert rig.inbox.rejected == 0
    assert not rig.fs.signaled
    # The batched wire format was actually used.
    assert rig.inbox.batches_unpacked > 0
    assert rig.fs.leader.batches_signed > 0


def test_batching_amortises_signatures():
    results = {}
    for label, config in (("unbatched", None), ("batched", BATCHED)):
        rig = FsRig(config=config)
        for n in range(1, 25):
            rig.submit("add", n)
        rig.run()
        assert rig.sink.values == [sum(range(1, k + 1)) for k in range(1, 25)]
        results[label] = (
            rig.fs.leader.signatures_made + rig.fs.follower.signatures_made
        )
    # 24 outputs per side: unbatched pays sign+countersign each; batched
    # pays per batch.  Strictly fewer, by a wide margin.
    assert results["batched"] < results["unbatched"] * 0.7


def test_flush_batches_is_an_explicit_barrier():
    # A huge window and batch size: nothing would flush on its own for
    # a long time; the explicit barrier forces it out now.
    config = FsoConfig(delta=2.0, batch_max=64, batch_delay_ms=10_000.0)
    rig = FsRig(config=config)
    rig.submit("add", 1)
    rig.run(until=200.0)
    assert rig.sink.values == []
    rig.fs.leader.flush_batches()
    rig.fs.follower.flush_batches()
    rig.run(until=400.0)
    assert rig.sink.values == [1]


def test_batched_corrupt_output_still_converts_into_fail_signal():
    rig = FsRig(config=BATCHED, leader_fso_class=ByzantineFso)
    rig.submit("add", 1)
    rig.run(until=100.0)
    rig.fs.leader.go_byzantine(corrupt_outputs=True)
    for n in range(2, 8):
        rig.submit("add", n)
    rig.run()
    assert rig.fs.signaled
    assert rig.fail_signals == ["counter"]
    # The corrupted value never crossed the double-signature check.
    assert all(v in [sum(range(1, k + 1)) for k in range(1, 8)] for v in rig.sink.values)


def test_batched_equivocation_yields_evidence_or_mismatch_signal():
    rig = FsRig(config=BATCHED, leader_fso_class=ByzantineFso)
    rig.submit("add", 1)
    rig.run(until=100.0)
    rig.fs.leader.go_byzantine(equivocate=True)
    for n in range(2, 8):
        rig.submit("add", n)
    rig.run()
    assert rig.fs.signaled
    assert rig.fs.follower.signal_reason in ("double-sign-evidence", "output-mismatch")


def test_batched_mute_caught_by_compare_timeout():
    rig = FsRig(config=BATCHED, leader_fso_class=ByzantineFso)
    rig.submit("add", 1)
    rig.run(until=100.0)
    rig.fs.leader.go_byzantine(mute_lan=True)
    rig.submit("add", 2)
    rig.run()
    assert rig.fs.follower.signaled
    assert rig.fail_signals == ["counter"]


def test_foreign_output_poisons_the_whole_peer_batch():
    """A batch smuggling another pair's fs_id is rejected outright --
    the receiver must never countersign content it refused to compare;
    the resulting starvation becomes a compare-timeout signal."""
    import dataclasses

    from repro.core.fso import Fso
    from repro.core.messages import BatchSingle, OutputBatch

    rig = FsRig(config=BATCHED)
    original = Fso._lan_send

    def smuggle(self, payload):
        if isinstance(payload, BatchSingle) and self is rig.fs.leader:
            batch = payload.signed.payload
            foreign = dataclasses.replace(batch.outputs[0], fs_id="other.pair")
            tampered = OutputBatch(
                fs_id=batch.fs_id,
                batch_no=batch.batch_no,
                outputs=batch.outputs + (foreign,),
            )
            payload = BatchSingle(signed=self.signer.sign_payload(tampered))
        original(self, payload)

    rig.fs.leader._lan_send = smuggle.__get__(rig.fs.leader)
    rig.submit("add", 1)
    rig.run()
    # The follower refused the poisoned batch wholesale: nothing from it
    # was countersigned or transmitted, and the pair signalled.
    assert rig.fs.follower.outputs_transmitted == 0
    assert rig.fs.signaled
    assert rig.sink.values in ([], [1])  # leader's own honest copy at most


def test_batched_and_unbatched_deliver_identical_values():
    values = {}
    for label, config in (("unbatched", None), ("batched", BATCHED)):
        rig = FsRig(seed=3, config=config)
        for n in range(1, 31):
            rig.submit("add", n)
        rig.run()
        values[label] = rig.sink.values
    assert values["batched"] == values["unbatched"]
