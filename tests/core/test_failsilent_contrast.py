"""Fail-silent vs fail-signal: why signalling matters.

The paper's lineage (Voltan fail-silent nodes -> fail-signal processes)
in one contrast: both constructions stop corrupted output from
escaping, but only the fail-signal pair *tells* the environment, which
is what downstream failure detection without timeouts is built on.
"""

from repro.core import ByzantineFso, FailSilentFso, FsoRole

from tests.core.conftest import FsRig


def test_same_detection_different_announcement():
    """Same fault, both constructions detect it; only FS announces."""
    silent_rig = FsRig(leader_fso_class=FailSilentFso, follower_fso_class=FailSilentFso)
    signal_rig = FsRig()

    for rig in (silent_rig, signal_rig):
        rig.fs.crash_node(FsoRole.FOLLOWER)
        rig.submit("add", 1)
        rig.run()
        assert rig.fs.leader.signaled  # detection happened in both

    assert silent_rig.inbox.fail_signals_received == 0
    assert signal_rig.inbox.fail_signals_received == 1


def test_fail_silent_never_emits_after_mismatch():
    rig = FsRig(
        leader_fso_class=FailSilentFso,
        follower_fso_class=type("SilentByz", (FailSilentFso, ByzantineFso), {}),
    )
    rig.fs.follower.go_byzantine(corrupt_outputs=True)
    rig.submit("add", 1)
    rig.run()
    # Detection at one or both sides; zero signals, zero further output.
    assert rig.fs.signaled
    assert rig.inbox.fail_signals_received == 0
    later = len(rig.sink.values)
    rig.submit("add", 2)
    rig.run()
    assert len(rig.sink.values) == later


def test_fail_silent_environment_cannot_distinguish_crash():
    """To its peers a fail-silent stop is indistinguishable from an
    unannounced crash -- which is why fail-silent systems still need
    timeout-based detection while fail-signal ones do not."""
    rig = FsRig(leader_fso_class=FailSilentFso, follower_fso_class=FailSilentFso)
    rig.fs.crash_node(FsoRole.LEADER)
    rig.submit("add", 1)
    rig.run()
    # Nothing observable at all: no values, no signals.
    assert rig.sink.values == []
    assert rig.inbox.fail_signals_received == 0
