"""Failure-free behaviour of a fail-signal pair."""

import pytest

from repro.core import FsoConfig
from repro.crypto.signing import RsaScheme

from tests.core.conftest import FsRig


def test_output_reaches_destination_exactly_once(rig):
    rig.submit("add", 5)
    rig.run()
    assert rig.sink.values == [5]
    # Both Compares transmitted, the inbox suppressed the duplicate.
    assert rig.inbox.outputs_forwarded == 1
    assert rig.inbox.rejected == 0


def test_both_replicas_process_identically(rig):
    for n in (5, 3, 2):
        rig.submit("add", n)
    rig.run()
    assert rig.replica_a.total == 10
    assert rig.replica_b.total == 10
    assert rig.sink.values == [5, 8, 10]


def test_outputs_delivered_in_input_order(rig):
    for n in range(1, 21):
        rig.submit("add", n)
    rig.run()
    assert rig.sink.values == [sum(range(1, k + 1)) for k in range(1, 21)]


def test_input_producing_no_output(rig):
    rig.submit("add_quiet", 100)
    rig.submit("add", 1)
    rig.run()
    assert rig.sink.values == [101]


def test_input_producing_multiple_outputs(rig):
    rig.submit("add_twice", 4)
    rig.run()
    assert rig.sink.values == [4, -4]


def test_no_fail_signal_in_failure_free_run(rig):
    for n in range(10):
        rig.submit("add", n)
    rig.run()
    assert not rig.fs.signaled
    assert rig.fail_signals == []
    assert rig.inbox.fail_signals_received == 0


def test_both_fsos_transmit(rig):
    rig.submit("add", 1)
    rig.run()
    assert rig.fs.leader.outputs_transmitted == 1
    assert rig.fs.follower.outputs_transmitted == 1


def test_two_fold_redundancy():
    """An FS process occupies exactly two nodes (vs three for fail-stop,
    the cost comparison of Remark 1)."""
    rig = FsRig()
    nodes = {rig.fs.leader.node.name, rig.fs.follower.node.name}
    assert len(nodes) == 2


def test_works_with_real_rsa():
    from repro.core import FsEnvironment
    from repro.corba import Node
    from repro.net import ConstantDelay, Network
    from repro.sim import Simulator

    rig = FsRig.__new__(FsRig)
    rig.sim = Simulator(seed=5)
    rig.net = Network(rig.sim, default_delay=ConstantDelay(1.0))
    rig.node_a = Node(rig.sim, "node-a", rig.net)
    rig.node_b = Node(rig.sim, "node-b", rig.net)
    rig.client = Node(rig.sim, "client", rig.net)
    rig.env = FsEnvironment(rig.sim, scheme=RsaScheme(bits=256))
    from tests.core.conftest import CounterReplica, Sink

    rig.replica_a, rig.replica_b = CounterReplica(), CounterReplica()
    rig.fs = rig.env.make_fail_signal(
        "counter", rig.node_a, rig.node_b, rig.replica_a, rig.replica_b
    )
    rig.sink = Sink()
    rig.sink_ref = rig.client.activate("sink", rig.sink)
    rig.inbox = rig.env.make_inbox(rig.client, "inbox")
    rig.inbox.local_rewrites["sink"] = rig.sink_ref
    rig.fail_signals = []
    rig.inbox.on_fail_signal = rig.fail_signals.append
    rig.env.routes.set_route("sink", [rig.inbox.ref])
    rig.fs.set_signal_destinations([rig.inbox.ref])
    rig._input_counter = 0

    rig.submit("add", 7)
    rig.run()
    assert rig.sink.values == [7]
    assert not rig.fs.signaled


def test_duplicate_input_copies_processed_once(rig):
    """The same input id submitted twice (e.g. a duplicated external
    request) must be ordered and processed once."""
    rig.fs.submit(rig.client, "add", (5,), ("dup", 1))
    rig.fs.submit(rig.client, "add", (5,), ("dup", 1))
    rig.run()
    assert rig.sink.values == [5]
    assert rig.replica_a.total == 5


def test_overhead_vs_unwrapped_latency():
    """The FS pipeline must cost something: latency through the wrapper
    exceeds a direct call path's, because of ordering + comparison."""
    rig = FsRig()
    rig.submit("add", 1)
    rig.run()
    fs_latency = rig.sink.results[0][0]
    # A direct oneway between two nodes costs ~1ms network + dispatch.
    assert fs_latency > 5.0


def test_config_validation():
    with pytest.raises(ValueError):
        FsoConfig(delta=0)
    with pytest.raises(ValueError):
        FsoConfig(kappa=0.5)
    with pytest.raises(ValueError):
        FsoConfig(sigma=0.0)


def test_timeout_formulas():
    config = FsoConfig(delta=3.0, kappa=2.0, sigma=2.0)
    assert config.leader_compare_timeout(pi=1.0, tau=0.5) == 6.0 + 2.0 + 1.0
    assert config.follower_compare_timeout(pi=1.0, tau=0.5) == 3.0 + 2.0 + 1.0
    assert config.t1 == 0.0
    assert config.t2 == 6.0


def test_distinct_nodes_required():
    rig = FsRig()
    from repro.core import FsWiringError
    from tests.core.conftest import CounterReplica

    with pytest.raises(FsWiringError):
        rig.env.make_fail_signal(
            "same-node", rig.node_a, rig.node_a, CounterReplica(), CounterReplica()
        )
