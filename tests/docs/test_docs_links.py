"""Documentation link integrity.

Scans every Markdown file in the repository for internal references --
relative links, and intra-repo file mentions in link targets -- and
checks they resolve.  External (http/mailto) links are out of scope;
anchors are checked against the target file's headings using GitHub's
slug rules (lowercase, spaces to dashes, punctuation dropped).
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

#: Markdown files under docs-link discipline.
DOC_FILES = sorted(
    p
    for p in [REPO / "README.md", *(REPO / "docs").glob("*.md")]
    if p.exists()
)

LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    return {github_slug(h) for h in HEADING.findall(path.read_text())}


def internal_links(path: pathlib.Path):
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_internal_links_resolve(doc):
    problems = []
    for target in internal_links(doc):
        raw_path, _, anchor = target.partition("#")
        resolved = (doc.parent / raw_path).resolve() if raw_path else doc
        if raw_path and not resolved.exists():
            problems.append(f"{target}: file {raw_path!r} does not exist")
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                problems.append(
                    f"{target}: no heading for anchor #{anchor} in {resolved.name}"
                )
    assert not problems, f"{doc.name}: " + "; ".join(problems)


def test_docs_corpus_is_nonempty():
    names = {p.name for p in DOC_FILES}
    assert {
        "README.md",
        "API.md",
        "ARCHITECTURE.md",
        "PERFORMANCE.md",
        "SCENARIOS.md",
        "TUTORIAL.md",
    } <= names


def test_mentioned_repo_paths_exist():
    """Qualified paths like ``benchmarks/perf_baseline.json`` or
    ``repro/core/fso.py`` mentioned in prose/code spans must exist in
    the tree.  Bare filenames (``fso.py``) are contextual prose and not
    checked."""
    mention = re.compile(r"`([\w./-]*/[\w.-]+\.(?:py|json|jsonl|md|yml|toml|txt))`")
    problems = []
    for doc in DOC_FILES:
        for raw in mention.findall(doc.read_text()):
            if "results/" in raw or "<" in raw:
                continue  # runtime outputs (gitignored), placeholders
            candidates = [REPO / raw, REPO / "src" / raw, doc.parent / raw]
            if not any(c.exists() for c in candidates):
                problems.append(f"{doc.name}: `{raw}`")
    assert not problems, "dangling file mentions: " + "; ".join(problems)
