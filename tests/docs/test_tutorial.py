"""docs/TUTORIAL.md must be runnable exactly as written.

Every ```python fenced block is extracted and executed, in order, in
one shared namespace -- the tutorial is a single program split across
prose.  A tutorial edit that breaks an import, an API call or one of
its own assertions fails this test.
"""

import pathlib
import re

TUTORIAL = pathlib.Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks() -> list[str]:
    return FENCE.findall(TUTORIAL.read_text())


def test_tutorial_has_code():
    blocks = python_blocks()
    assert len(blocks) >= 5, "tutorial lost its worked example"
    assert any("run_scenario" in b for b in blocks)
    assert any("audit_scenario" in b for b in blocks)


def test_tutorial_blocks_execute_in_order():
    namespace: dict = {"__name__": "tutorial"}
    for index, block in enumerate(python_blocks()):
        try:
            exec(compile(block, f"TUTORIAL.md[block {index}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assertion text matters
            raise AssertionError(
                f"tutorial block {index} failed: {exc}\n---\n{block}"
            ) from exc
