"""Unit tests for the hot-path caches in :mod:`repro.perf`."""

import dataclasses

import pytest

from repro import perf
from repro.crypto.canonical import canonical_encode


@dataclasses.dataclass(frozen=True)
class Message:
    seq: int
    body: str


@dataclasses.dataclass(frozen=True)
class LazyMessage:
    """A frozen dataclass with a lazily-written memo field -- the shape
    the identity cache must refuse (its encoding is not a pure function
    of object identity)."""

    seq: int
    _memo: int | None = dataclasses.field(default=None, init=False, compare=False)


# ----------------------------------------------------------------------
# IdentityCache
# ----------------------------------------------------------------------
def test_encode_cache_hit_on_same_object():
    cache = perf.IdentityCache(maxsize=16)
    msg = Message(1, "a")
    assert cache.get(msg) is None
    cache.put(msg, b"encoded")
    assert cache.get(msg) == b"encoded"
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_encode_cache_is_identity_keyed():
    cache = perf.IdentityCache(maxsize=16)
    cache.put(Message(1, "a"), b"x")  # the key object dies... no: strong ref held
    other = Message(1, "a")  # equal but distinct
    assert cache.get(other) is None


def test_encode_cache_eviction_bounds_size():
    cache = perf.IdentityCache(maxsize=8)
    messages = [Message(i, "m") for i in range(20)]
    for msg in messages:
        cache.put(msg, b"e")
    assert len(cache) <= 8
    assert cache.stats.evictions > 0


def test_encode_cache_rejects_tiny_maxsize():
    with pytest.raises(ValueError):
        perf.IdentityCache(maxsize=1)


def test_clear_caches_resets_stats_and_entries():
    msg = Message(7, "x")
    canonical_encode(msg)
    canonical_encode(msg)
    assert perf.encode_cache.stats.lookups > 0
    perf.clear_caches()
    assert len(perf.encode_cache) == 0
    assert perf.encode_cache.stats.lookups == 0


# ----------------------------------------------------------------------
# integration with canonical_encode
# ----------------------------------------------------------------------
def test_canonical_encode_memoises_frozen_dataclasses():
    perf.clear_caches()
    msg = Message(1, "payload")
    first = canonical_encode(msg)
    hits_before = perf.encode_cache.stats.hits
    second = canonical_encode(msg)
    assert first == second
    assert perf.encode_cache.stats.hits == hits_before + 1


def test_equal_objects_encode_identically_despite_identity_keying():
    perf.clear_caches()
    a, b = Message(5, "same"), Message(5, "same")
    assert canonical_encode(a) == canonical_encode(b)


def test_lazy_memo_dataclass_is_not_identity_cached():
    obj = LazyMessage(1)
    before = canonical_encode(obj)
    object.__setattr__(obj, "_memo", 42)
    after = canonical_encode(obj)
    # The encoding must track the mutation -- proof the object was not
    # frozen into the identity cache.
    assert before != after


def test_mutable_dataclass_not_cached():
    @dataclasses.dataclass
    class Mutable:
        x: int

    obj = Mutable(1)
    before = canonical_encode(obj)
    obj.x = 2
    assert canonical_encode(obj) != before


def test_nested_message_encoding_consistent_with_cache():
    perf.clear_caches()
    inner = Message(3, "inner")
    uncached_tuple = canonical_encode((inner, "tag"))
    canonical_encode(inner)  # prime the cache
    assert canonical_encode((inner, "tag")) == uncached_tuple


# ----------------------------------------------------------------------
# VerifyCache
# ----------------------------------------------------------------------
def test_verify_cache_roundtrip_and_eviction():
    cache = perf.VerifyCache(maxsize=8)
    assert cache.get(("a", b"d", 1)) is None
    cache.put(("a", b"d", 1), True)
    cache.put(("a", b"d", 2), False)
    assert cache.get(("a", b"d", 1)) is True
    assert cache.get(("a", b"d", 2)) is False
    for i in range(20):
        cache.put(("k", b"d", i), True)
    assert len(cache) <= 8
    assert cache.stats.evictions > 0


def test_disabling_a_cache_drops_existing_entries():
    cache = perf.IdentityCache(maxsize=16)
    msg = Message(2, "b")
    cache.put(msg, b"x")
    cache.enabled = False
    assert cache.get(msg) is None  # a disabled cache is genuinely inert
    cache.put(msg, b"x")
    assert len(cache) == 0
    cache.enabled = True
    cache.put(msg, b"x")
    assert cache.get(msg) == b"x"


def test_clear_caches_reaches_caches_in_other_modules():
    from repro.core.messages import FsOutput, _body_size_cache, _content_key_cache
    from repro.corba.orb import ObjectRef

    output = FsOutput(
        fs_id="p.gc", input_seq=1, output_idx=0,
        target=ObjectRef(node="n", key="k"), method="m", args=("a",),
    )
    output.content_key()
    __ = output.wire_size
    assert len(_content_key_cache) == 1
    assert len(_body_size_cache) == 1
    perf.clear_caches()
    assert len(_content_key_cache) == 0
    assert len(_body_size_cache) == 0
