"""Bounded-memory soak: low-water retirement keeps footprints flat.

The ``app_kv_soak`` scenario streams 60 checkpoint boundaries through
every store.  Without retirement, oplog/dedup/certificate state grows
linearly with the run (240 applied ops per member); with it, the peaks
must stay under small ceilings that are a function of the *spec*
(retention window x checkpoint stride), not of run length.  Gated
behind ``--runslow`` like the benchmarks.
"""

import pytest

from repro.experiments import audit_scenario, get_scenario

pytestmark = pytest.mark.soak


def test_soak_run_memory_stays_flat_over_many_checkpoint_intervals():
    scenario = get_scenario("app_kv_soak")
    __, __, spec = scenario.expand()[0]
    run = audit_scenario(spec, scenario="app/soak")
    assert run.report.ok, run.report.render()

    metrics = run.result.metrics
    stride = spec.app.checkpoint_every
    retain = spec.app.retain_checkpoints
    per_member_ops = metrics["app_seq_max"]

    # The run is long enough to mean anything: tens of checkpoint
    # intervals per store, all members converged on one digest.
    assert per_member_ops >= 10 * stride
    assert metrics["app_checkpoints"] >= 10 * spec.n_members
    assert metrics["app_distinct_digests"] == 1.0

    # Bounded memory: the retention window is `retain` boundaries of
    # `stride` ops each; peaks may exceed it only by the quorum lag
    # (a couple of strides of in-flight gossip), never by run length.
    window = (retain + 3) * stride
    assert metrics["app_oplog_peak"] <= window
    assert metrics["app_dedup_peak"] <= window
    # Certificate log: every member's cert for the retained boundaries
    # plus the not-yet-retired head.
    assert metrics["app_checkpoint_log_peak"] <= spec.n_members * (retain + 2)

    # Flatness, not just smallness: the peaks are a small fraction of
    # what unretired linear growth would have accumulated.
    assert metrics["app_oplog_peak"] <= per_member_ops / 4
    assert metrics["app_dedup_peak"] <= per_member_ops / 4
