"""Negative controls for the state-consistency oracle.

An oracle that never fires is worse than no oracle: these tests feed
hand-built ``app``/``appstate`` trace streams to the
:class:`~repro.invariants.oracles.StateConsistencyOracle` and assert
that each corruption mode it promises to catch is actually flagged --
a skipped/reordered apply, a silently dropped tail, a store whose
digest diverges at the same applied history (corruption or forgery),
fault-free checkpoint disagreement, a recovery that never completes,
and a recovery landing on a digest nobody else certified.
"""

from repro.invariants import AuditConfig, InvariantMonitor, PairTopology, Topology
from repro.sim import Simulator
from repro.sim.trace import TraceRecord

MEMBERS = ("member-0", "member-1")

TOPOLOGY = Topology(
    system="fs-newtop",
    members=MEMBERS,
    pairs=tuple(
        PairTopology(f"{m}.gc", m, m, f"{m}-b") for m in MEMBERS
    ),
)

D1, H1 = "aa" * 16, "11" * 16
D2 = "bb" * 16


class Harness:
    def __init__(self):
        self.sim = Simulator(seed=3)
        self.monitor = InvariantMonitor(self.sim, TOPOLOGY, config=AuditConfig())

    def feed(self, time, category, source, event, **details):
        self.monitor._observe(
            TraceRecord(
                time=time,
                category=category,
                source=source,
                event=event,
                details=tuple(sorted(details.items())),
            )
        )

    def deliver(self, t, member, key):
        self.feed(
            t, "app", f"{member}.inv", "deliver",
            key=key, sender="member-0", service="symmetric_total",
        )

    def apply(self, t, member, key, seq):
        self.feed(t, "appstate", f"{member}.kv", "apply", key=key, seq=seq)

    def checkpoint(self, t, member, seq, digest, hist):
        self.feed(
            t, "appstate", f"{member}.kv", "checkpoint",
            seq=seq, digest=digest, hist=hist,
        )

    def recover_start(self, t, member, deadline_ms=None):
        self.feed(
            t, "appstate", f"{member}.kv", "recover-start",
            donor="member-0", at_seq=0, deadline_ms=deadline_ms,
        )

    def recover_complete(self, t, member, seq, digest):
        self.feed(
            t, "appstate", f"{member}.kv", "recover-complete",
            seq=seq, digest=digest, replayed=0, bytes=100,
        )

    def verdict(self):
        report = self.monitor.finish()
        return next(v for v in report.verdicts if v.oracle == "state-consistency")


def _messages(verdict):
    return " ".join(v.message for v in verdict.violations)


def test_clean_feed_passes():
    h = Harness()
    for position, key in enumerate(("k1" * 16, "k2" * 16)):
        for member in MEMBERS:
            h.deliver(1.0 + position, member, key)
            h.apply(1.5 + position, member, key, seq=position + 1)
    for member in MEMBERS:
        h.checkpoint(3.0, member, 2, D1, H1)
    verdict = h.verdict()
    assert not verdict.violations and verdict.checked > 0


def test_skipped_apply_is_flagged():
    h = Harness()
    first, second = "k1" * 16, "k2" * 16
    h.deliver(1.0, "member-0", first)
    h.deliver(2.0, "member-0", second)
    h.apply(2.5, "member-0", second, seq=1)  # skipped `first`
    verdict = h.verdict()
    assert "skipped, reordered or phantom" in _messages(verdict)


def test_phantom_apply_is_flagged():
    h = Harness()
    h.apply(1.0, "member-0", "gh" * 16, seq=1)  # nothing was delivered
    verdict = h.verdict()
    assert "skipped, reordered or phantom" in _messages(verdict)


def test_silently_dropped_tail_is_flagged():
    h = Harness()
    first, second = "k1" * 16, "k2" * 16
    h.deliver(1.0, "member-0", first)
    h.apply(1.5, "member-0", first, seq=1)
    h.deliver(2.0, "member-0", second)  # delivered, never applied
    verdict = h.verdict()
    assert "silently dropped the tail" in _messages(verdict)


def test_same_history_different_digest_is_flagged():
    """The determinism rule: equal hist must mean equal digest, crash
    or no crash -- divergence convicts a corrupted or forged store."""
    h = Harness()
    h.checkpoint(1.0, "member-0", 4, D1, H1)
    h.checkpoint(1.1, "member-1", 4, D2, H1)  # same history, other bytes
    verdict = h.verdict()
    assert "corrupted store or forged checkpoint" in _messages(verdict)


def test_fault_free_checkpoint_disagreement_is_flagged():
    """With no faults injected, members checkpointing one seq must
    agree outright -- even differing histories are disagreement."""
    h = Harness()
    h.checkpoint(1.0, "member-0", 4, D1, H1)
    h.checkpoint(1.1, "member-1", 4, D2, "22" * 16)
    verdict = h.verdict()
    assert "disagree at checkpoint seq 4" in _messages(verdict)


def test_never_completed_recovery_is_flagged():
    h = Harness()
    h.recover_start(100.0, "member-1")
    verdict = h.verdict()
    assert "never completed it" in _messages(verdict)


def test_late_recovery_is_flagged_against_the_spec_deadline():
    h = Harness()
    h.checkpoint(1.0, "member-0", 4, D1, H1)
    h.recover_start(100.0, "member-1", deadline_ms=50.0)
    h.recover_complete(400.0, "member-1", 4, D1)  # 300ms > 50ms override
    verdict = h.verdict()
    assert "took 300.0ms to recover" in _messages(verdict)


def test_unvouched_recovery_digest_is_flagged():
    h = Harness()
    h.checkpoint(1.0, "member-0", 4, D1, H1)
    h.recover_start(100.0, "member-1")
    h.recover_complete(120.0, "member-1", 4, D2)  # nobody certified D2@4
    verdict = h.verdict()
    assert "no other member ever certified" in _messages(verdict)


def test_vouched_recovery_passes():
    h = Harness()
    h.checkpoint(1.0, "member-0", 4, D1, H1)
    h.recover_start(100.0, "member-1")
    h.recover_complete(120.0, "member-1", 4, D1)
    verdict = h.verdict()
    assert not verdict.violations
