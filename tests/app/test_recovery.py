"""Crash-recover-rejoin: full-stack scenario runs plus evidence checks.

The full-stack tests drive the registered ``app_kv_*`` scenarios end to
end -- clean convergence, a crash-recover fault, and a recovery raced
by a churn-storm adversary inside the transfer window -- and assert all
eight oracles stay green.  The unit tests poke :func:`run_recovery`
directly with hand-built donors to prove it refuses bad evidence: no
quorum, and a donor snapshot whose bytes do not hash to the quorum
digest.
"""

import pytest

from repro.app.checkpoint import Checkpoint, CheckpointLog
from repro.app.kvstore import KvStore
from repro.app.recovery import RecoveryError, run_recovery
from repro.crypto import md5_hexdigest
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import HmacScheme
from repro.experiments import audit_scenario, get_scenario
from repro.sim import Simulator


def _spec(name):
    scenario = get_scenario(name)
    __, __, spec = scenario.expand()[0]
    return spec


def _state_verdict(report):
    return next(v for v in report.verdicts if v.oracle == "state-consistency")


# ----------------------------------------------------------------------
# full-stack scenarios
# ----------------------------------------------------------------------
def test_smoke_scenario_converges_on_one_digest():
    run = audit_scenario(_spec("app_kv_smoke"), scenario="app/smoke")
    assert run.report.ok, run.report.render()
    assert len(run.report.verdicts) == 8
    verdict = _state_verdict(run.report)
    assert verdict.checked > 0  # the oracle really audited the app stream
    metrics = run.result.metrics
    assert metrics["app_ops_applied"] > 0
    assert metrics["app_checkpoints"] > 0
    assert metrics["app_distinct_digests"] == 1.0  # all members byte-identical


def test_crash_recover_scenario_rebuilds_the_member():
    run = audit_scenario(_spec("app_kv_recover"), scenario="app/recover")
    assert run.report.ok, run.report.render()
    assert len(run.report.verdicts) == 8
    metrics = run.result.metrics
    assert metrics["app_recoveries"] == 1.0
    assert metrics["app_transfer_bytes"] > 0
    # The rebuilt store landed on a certified boundary: at most two
    # distinct (seq, digest) points across the group (survivors at the
    # head, the recovered member at its anchor boundary).
    assert metrics["app_distinct_digests"] <= 2.0


def test_recovery_survives_a_churn_storm_in_the_transfer_window():
    run = audit_scenario(_spec("app_kv_recover_adv"), scenario="app/recover-adv")
    assert run.report.ok, run.report.render()
    metrics = run.result.metrics
    assert metrics["app_recoveries"] == 1.0
    assert metrics["fail_signals"] >= 1.0  # the storm really fired


def test_audited_app_scenarios_are_deterministic():
    spec = _spec("app_kv_recover")
    first = audit_scenario(spec, scenario="app/det").report.to_dict()
    second = audit_scenario(spec, scenario="app/det").report.to_dict()
    assert first == second


# ----------------------------------------------------------------------
# unit checks: run_recovery refuses bad evidence
# ----------------------------------------------------------------------
class _Member:
    """The duck-typed slice of AppMember that run_recovery touches."""

    def __init__(self, keystore):
        self.keystore = keystore
        self.store = KvStore()
        self.log = CheckpointLog(keystore)
        self.oplog = []
        self.seen = {}
        self.snapshots = {}
        self.stable_seq = 0


@pytest.fixture
def group():
    keystore = KeyStore(HmacScheme())
    rng = Simulator(seed=11).rng("app")
    signers = {m: keystore.new_signer(m, rng) for m in ("a", "b", "c")}
    return keystore, signers


def _grow_donor(keystore, signers, ops=6, boundary=4):
    """A donor that applied ``ops`` operations with a certified
    checkpoint (f+1 matching signatures) at ``boundary``."""
    donor = _Member(keystore)
    for index in range(ops):
        msg_key = md5_hexdigest(f"m{index}".encode())
        op = {"t": "put", "k": f"k{index % 3}", "v": index}
        donor.store.apply(op, msg_key)
        donor.oplog.append((donor.store.seq, msg_key, op))
        if donor.store.seq == boundary:
            donor.snapshots[boundary] = donor.store.snapshot()
            for member in ("a", "b"):
                checkpoint = Checkpoint(
                    member=member,
                    seq=boundary,
                    digest=donor.store.digest(),
                    hist=donor.store.hist,
                )
                donor.log.add(signers[member].sign_payload(checkpoint.payload()))
    donor.snapshots[donor.store.seq] = donor.store.snapshot()
    return donor


def test_unit_recovery_restores_and_replays_to_the_donor_head(group):
    keystore, signers = group
    donor = _grow_donor(keystore, signers)
    member = _Member(keystore)
    outcome = run_recovery(member, donor, f=1)
    assert outcome.anchor_seq == 4
    assert outcome.target_seq == 6 and outcome.replayed == 2
    assert member.store.digest() == donor.store.digest()
    assert outcome.transfer_bytes > 0


def test_unit_recovery_without_a_quorum_raises(group):
    keystore, signers = group
    donor = _grow_donor(keystore, signers)
    donor.log = CheckpointLog(keystore)  # certificates lost: no quorum
    member = _Member(keystore)
    with pytest.raises(RecoveryError, match="no f\\+1-matching checkpoint quorum"):
        run_recovery(member, donor, f=1)
    assert member.store.seq == 0  # nothing restored from unvouched bytes


def test_unit_forged_donor_snapshot_is_refused(group):
    keystore, signers = group
    donor = _grow_donor(keystore, signers)
    # The donor substitutes bytes under the valid certificates.
    donor.snapshots[4] = {**donor.snapshots[4], "data": {"k0": "forged"}}
    member = _Member(keystore)
    with pytest.raises(RecoveryError, match="does not hash to"):
        run_recovery(member, donor, f=1)
    assert member.store.seq == 0


def test_unit_truncated_oplog_suffix_is_refused(group):
    keystore, signers = group
    donor = _grow_donor(keystore, signers)
    donor.oplog = [entry for entry in donor.oplog if entry[0] != 6]  # tail lost
    member = _Member(keystore)
    with pytest.raises(RecoveryError, match="short of the target boundary"):
        run_recovery(member, donor, f=1)
