"""Property tests of the deterministic KV state machine.

Determinism is the load-bearing property the whole application layer
stands on: any two stores that apply the same operation sequence must
hold byte-identical state (equal digests), and the rolling history
digest must name the sequence uniquely.  Hypothesis drives random op
sequences instead of hand-picked fixtures.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.kvstore import GENESIS_HIST, KvStore, snapshot_bytes, synthesize_op
from repro.crypto import md5_hexdigest

KEYS = st.sampled_from(("a", "b", "c", "hot"))

OPS = st.one_of(
    st.builds(lambda k, v: {"t": "put", "k": k, "v": v}, KEYS, st.integers(0, 99)),
    st.builds(lambda k: {"t": "del", "k": k}, KEYS),
    st.builds(
        lambda k, v, e: {"t": "cas", "k": k, "v": v, "expect": e},
        KEYS,
        st.integers(0, 99),
        st.integers(0, 3),
    ),
    st.builds(lambda k: {"t": "get", "k": k}, KEYS),
)

SEQUENCES = st.lists(OPS, max_size=30)


def _apply_all(ops):
    store = KvStore()
    for index, op in enumerate(ops):
        store.apply(op, md5_hexdigest(f"msg-{index}".encode()))
    return store


@given(ops=SEQUENCES)
@settings(max_examples=100, deadline=None)
def test_same_sequence_means_same_state(ops):
    first, second = _apply_all(ops), _apply_all(ops)
    assert first.digest() == second.digest()
    assert first.hist == second.hist
    assert first.state() == second.state()


@given(ops=SEQUENCES)
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_round_trips_mid_sequence(ops):
    """Restoring a snapshot and replaying the suffix converges on the
    uninterrupted store -- the recovery path's core assumption."""
    reference = _apply_all(ops)
    half = len(ops) // 2
    prefix = _apply_all(ops[:half])
    recovered = KvStore()
    recovered.restore(prefix.snapshot())
    for index, op in enumerate(ops[half:], start=half):
        recovered.apply(op, md5_hexdigest(f"msg-{index}".encode()))
    assert recovered.digest() == reference.digest()
    assert recovered.hist == reference.hist


@given(ops=SEQUENCES)
@settings(max_examples=60, deadline=None)
def test_seq_counts_every_applied_op_and_hist_leaves_genesis(ops):
    store = _apply_all(ops)
    assert store.seq == len(ops)
    assert (store.hist == GENESIS_HIST) == (not ops)
    assert snapshot_bytes(store.snapshot()) > 0


@given(first=st.text("ab", min_size=1, max_size=6), second=st.text("ab", min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_hist_is_injective_over_msg_key_sequences(first, second):
    """Different delivery sequences produce different history digests
    (modulo md5 collisions), so equal hist really means equal feed."""
    def chain(letters):
        store = KvStore()
        for letter in letters:
            store.apply({"t": "get", "k": "x"}, md5_hexdigest(letter.encode()))
        return store.hist

    assert (chain(first) == chain(second)) == (first == second)


def test_cas_conditions_on_the_version_counter():
    store = KvStore()
    store.apply({"t": "put", "k": "a", "v": 1}, "m0")  # version 1
    assert not store.apply({"t": "cas", "k": "a", "v": 9, "expect": 0}, "m1")
    assert store.get("a") == 1
    assert store.apply({"t": "cas", "k": "a", "v": 9, "expect": 1}, "m2")
    assert store.get("a") == 9
    assert store.versions["a"] == 2


def test_delete_advances_versions_monotonically():
    store = KvStore()
    store.apply({"t": "put", "k": "a", "v": 1}, "m0")
    store.apply({"t": "del", "k": "a"}, "m1")
    assert "a" not in store.data and store.versions["a"] == 2
    # cas after delete conditions on the surviving counter, not zero.
    assert store.apply({"t": "cas", "k": "a", "v": 5, "expect": 2}, "m2")


# ----------------------------------------------------------------------
# operation synthesis
# ----------------------------------------------------------------------
MSG_KEYS = st.text("0123456789abcdef", min_size=32, max_size=32)


@given(msg_key=MSG_KEYS, value=st.one_of(st.none(), st.integers(), st.text(max_size=5)))
@settings(max_examples=60, deadline=None)
def test_synthesized_ops_are_deterministic_and_well_formed(value, msg_key):
    first = synthesize_op(value, msg_key)
    assert first == synthesize_op(value, msg_key)
    store = KvStore()
    store.apply(first, msg_key)  # must not raise
    assert store.seq == 1


def test_explicit_op_is_taken_verbatim_top_level_and_enveloped():
    op = {"t": "put", "k": "user", "v": 7}
    msg_key = "ab" * 16
    assert synthesize_op({"op": op}, msg_key) == op
    # The gateway envelope nests the client payload under "b" and uses
    # "op" for the operation *id* string -- which must not be mistaken
    # for a KV operation.
    enveloped = {"op": "op-000042", "c": "client-1", "b": {"op": op}, "k": "user"}
    assert synthesize_op(enveloped, msg_key) == op


def test_malformed_explicit_ops_fall_back_to_synthesis():
    msg_key = "ab" * 16
    for bad in ({"op": {"t": "nope", "k": "a"}}, {"op": {"t": "put"}}, {"op": "text"}):
        derived = synthesize_op(bad, msg_key)
        assert derived["t"] in ("put", "del")
        assert isinstance(derived["k"], str)
