"""Differential: the application layer is deployment-agnostic.

The KV store rides the delivery feed, so a single-shard (S=1)
deployment must leave every member's store byte-identical -- same seq,
same state digest, same history digest -- to the plain unsharded group
under the same keyed load.  Anything else would mean the holdback path
feeds the application a different sequence than the direct path.
"""

from repro.app.runtime import AppRuntime
from repro.app.spec import AppSpec
from repro.experiments.runner import build_ordering_group
from repro.experiments.spec import ScenarioSpec, ShardSpec
from repro.perf import clear_caches
from repro.shard.group import build_sharded_group
from repro.sim.scheduler import Simulator
from repro.workloads.ordering import OrderingWorkload, ShardedOrderingWorkload

SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=5,
    interval=80.0,
    seed=3,
    settle_ms=10_000.0,
)
APP = AppSpec(checkpoint_every=4)
KEYSPACE = 32


def _stores(runtime):
    return {
        member_id: (member.store.seq, member.store.digest(), member.store.hist)
        for member_id, member in runtime.members.items()
    }


def _run_unsharded():
    sim = Simulator(seed=SPEC.seed)
    group = build_ordering_group(sim, SPEC)
    runtime = AppRuntime(sim, group, APP)
    workload = OrderingWorkload(
        sim,
        group,
        messages_per_member=SPEC.messages_per_member,
        interval=SPEC.interval,
        message_size=SPEC.message_size,
        keyspace=KEYSPACE,
    )
    workload.run(settle_ms=SPEC.settle_ms)
    clear_caches()
    return runtime


def _run_sharded(shards: int):
    sim = Simulator(seed=SPEC.seed)
    spec = SPEC.replace(shard=ShardSpec(shards=shards, keyspace=KEYSPACE))
    group = build_sharded_group(sim, spec)
    runtime = AppRuntime(sim, group, APP)
    workload = ShardedOrderingWorkload(
        sim,
        group,
        messages_per_member=SPEC.messages_per_member,
        interval=SPEC.interval,
        message_size=SPEC.message_size,
        keyspace=KEYSPACE,
    )
    workload.run(settle_ms=SPEC.settle_ms)
    clear_caches()
    return runtime


def test_single_shard_stores_are_byte_identical_to_unsharded():
    unsharded = _stores(_run_unsharded())
    sharded = _stores(_run_sharded(shards=1))
    assert sharded == unsharded
    # And the load really flowed: every member applied every message.
    total = SPEC.n_members * SPEC.messages_per_member
    assert all(seq == total for seq, __, __ in unsharded.values())


def test_all_members_converge_within_each_deployment():
    for runtime in (_run_unsharded(), _run_sharded(shards=1)):
        digests = {digest for __, digest, __ in _stores(runtime).values()}
        assert len(digests) == 1


def test_app_state_is_seed_deterministic():
    assert _stores(_run_unsharded()) == _stores(_run_unsharded())
    assert _stores(_run_sharded(shards=2)) == _stores(_run_sharded(shards=2))


def test_two_shards_converge_per_shard():
    """At S=2 the feeds differ across shards by design, but members of
    one shard still apply one sequence -- equal digests shard-locally."""
    runtime = _run_sharded(shards=2)
    stores = _stores(runtime)
    for member_id, group_members in runtime._groups.items():
        assert {stores[m] for m in group_members} == {stores[member_id]}
