"""Signed checkpoints: payload round-trips, quorums and retirement.

The certificate payload crosses the signing boundary through the
canonical codec, so ``payload() -> from_payload()`` must be loss-free
and equal payloads must canonically encode to equal bytes
(Hypothesis-driven); the log must reject anything the keystore cannot
verify, and the low-water mark must actually retire state -- the
property the soak run leans on.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.checkpoint import Checkpoint, CheckpointLog
from repro.crypto import canonical_encode
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import HmacScheme
from repro.sim import Simulator

HEX = st.text("0123456789abcdef", min_size=32, max_size=32)

CHECKPOINTS = st.builds(
    Checkpoint,
    member=st.sampled_from(("member-0", "member-1", "m.app")),
    seq=st.integers(0, 10_000),
    digest=HEX,
    hist=HEX,
)


@given(checkpoint=CHECKPOINTS)
@settings(max_examples=80, deadline=None)
def test_checkpoint_payload_round_trips_and_encodes_deterministically(checkpoint):
    payload = checkpoint.payload()
    assert Checkpoint.from_payload(payload) == checkpoint
    # The signature covers the canonical encoding, so equal payloads
    # must encode to equal bytes -- and re-deriving the payload from
    # the round-tripped checkpoint must hit the same bytes.
    wire = canonical_encode(payload)
    assert canonical_encode(Checkpoint.from_payload(payload).payload()) == wire


@pytest.fixture
def keyring():
    keystore = KeyStore(HmacScheme())
    rng = Simulator(seed=5).rng("app")
    signers = {m: keystore.new_signer(m, rng) for m in ("a", "b", "c", "d")}
    return keystore, signers


def _signed(signers, member, seq, digest="d1" * 16, hist="h1" * 16):
    checkpoint = Checkpoint(member=member, seq=seq, digest=digest, hist=hist)
    return signers[member].sign_payload(checkpoint.payload())


def test_quorum_needs_f_plus_one_matching_certs(keyring):
    keystore, signers = keyring
    log = CheckpointLog(keystore)
    assert log.add(_signed(signers, "a", 8)) is not None
    assert log.quorum_at(8, f=1) is None  # one cert is one member's word
    assert log.add(_signed(signers, "b", 8)) is not None
    quorum = log.quorum_at(8, f=1)
    assert quorum is not None
    checkpoint, certs = quorum
    assert checkpoint.seq == 8 and len(certs) == 2
    # A divergent digest does not join the quorum group.
    log.add(_signed(signers, "c", 8, digest="ff" * 16))
    __, certs = log.quorum_at(8, f=1)
    assert len(certs) == 2


def test_forged_and_garbage_certs_are_rejected(keyring):
    keystore, signers = keyring
    log = CheckpointLog(keystore)
    good = _signed(signers, "a", 8)
    forged = dataclasses.replace(
        good, payload={**good.payload, "digest": "ee" * 16}
    )
    assert log.add(forged) is None  # signature no longer covers payload
    garbage = dataclasses.replace(good, payload="not a certificate at all")
    assert log.add(garbage) is None  # non-dict payload
    assert log.rejected == 2 and len(log) == 0


def test_unknown_signer_is_rejected(keyring):
    keystore, __ = keyring
    other = KeyStore(HmacScheme())
    stranger = other.new_signer("stranger", Simulator(seed=6).rng("app"))
    log = CheckpointLog(keystore)
    signed = stranger.sign_payload(
        Checkpoint(member="stranger", seq=8, digest="d1" * 16, hist="h1" * 16).payload()
    )
    assert log.add(signed) is None
    assert log.rejected == 1


def test_low_water_retires_old_seqs_and_bounds_the_log(keyring):
    keystore, signers = keyring
    log = CheckpointLog(keystore, retain=2)
    for seq in (4, 8, 12, 16, 20):
        for member in ("a", "b", "c"):
            log.add(_signed(signers, member, seq, hist=f"{seq:02d}" * 16))
    low = log.advance_low_water(20, stride=4)
    assert low == 12
    assert sorted(log._by_seq) == [12, 16, 20]
    assert len(log) == 9
    # Late certificates below the mark verify but are not filed.
    late = _signed(signers, "d", 4, hist="04" * 16)
    assert log.add(late) is not None
    assert 4 not in log._by_seq
    # The mark never regresses.
    assert log.advance_low_water(8, stride=4) == 12


def test_latest_quorum_prefers_the_highest_seq(keyring):
    keystore, signers = keyring
    log = CheckpointLog(keystore)
    for seq in (8, 16):
        for member in ("a", "b"):
            log.add(_signed(signers, member, seq, hist=f"{seq:02d}" * 16))
    log.add(_signed(signers, "c", 24))  # no quorum up there yet
    quorum = log.latest_quorum(f=1)
    assert quorum is not None and quorum[0].seq == 16
