"""Tests for the scenario registry."""

import pytest

from repro.experiments import (
    Scenario,
    ScenarioSpec,
    SweepPoint,
    UnknownScenarioError,
    get_scenario,
    register,
    run_scenario,
    scenario_names,
    scenarios,
)


def test_unknown_scenario_raises_with_catalogue():
    with pytest.raises(UnknownScenarioError) as excinfo:
        get_scenario("fig99_warp_speed")
    message = str(excinfo.value)
    assert "fig99_warp_speed" in message
    # The error teaches the caller what exists.
    assert "fig7_throughput" in message


def test_paper_figures_registered():
    names = scenario_names()
    for expected in ("fig6_latency", "fig7_throughput", "fig8_message_size"):
        assert expected in names


def test_beyond_paper_scenarios_registered():
    names = scenario_names()
    for expected in ("byzantine_flood", "partition_heal", "churn", "mixed_rw"):
        assert expected in names


def test_duplicate_registration_rejected():
    scenario = get_scenario("fig6_latency")
    with pytest.raises(ValueError):
        register(scenario)


def test_expand_crosses_systems_and_points():
    scenario = get_scenario("fig6_latency")
    expanded = scenario.expand()
    assert len(expanded) == len(scenario.systems) * len(scenario.sweep)
    systems = {system for system, _, _ in expanded}
    assert systems == set(scenario.systems)
    # Sweep overrides are applied.
    sizes = {spec.n_members for _, _, spec in expanded}
    assert sizes == set(range(2, 11))


def test_expand_can_subset_systems():
    scenario = get_scenario("fig7_throughput")
    expanded = scenario.expand(systems=("newtop",))
    assert {system for system, _, _ in expanded} == {"newtop"}


def test_spec_for_rejects_foreign_system():
    scenario = get_scenario("byzantine_flood")
    with pytest.raises(ValueError):
        scenario.spec_for("newtop", scenario.sweep[0])


def test_every_scenario_expands_to_valid_specs():
    for scenario in scenarios():
        for system, label, spec in scenario.expand():
            assert spec.system == system
            assert isinstance(spec, ScenarioSpec)
            # Specs must survive the store's serialisation.
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_seed_determinism_same_spec_same_metrics():
    """Same spec + seed => identical metrics, the registry's contract
    that campaign repeats are meaningfully comparable."""
    scenario = get_scenario("fig6_latency")
    spec = scenario.spec_for("newtop", scenario.sweep[0]).replace(
        seed=42, messages_per_member=3, settle_ms=10_000.0
    )
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.metrics == second.metrics


def test_different_seeds_differ():
    scenario = get_scenario("fig6_latency")
    base = scenario.spec_for("newtop", scenario.sweep[0]).replace(
        messages_per_member=3, settle_ms=10_000.0
    )
    a = run_scenario(base.replace(seed=1))
    b = run_scenario(base.replace(seed=2))
    assert a.metrics["latency_mean_ms"] != b.metrics["latency_mean_ms"]


CHEAP = Scenario(
    name="cheap-smoke",
    title="smoke",
    description="cheapest possible grid for unit tests",
    base=ScenarioSpec(
        system="newtop",
        n_members=2,
        messages_per_member=2,
        interval=100.0,
        settle_ms=5_000.0,
    ),
    systems=("newtop",),
    sweep_axis="members",
    sweep=(SweepPoint(label=2, overrides={"n_members": 2}),),
)


def test_unregistered_scenario_object_runs():
    """Scenario objects work standalone -- registration is for naming."""
    system, label, spec = CHEAP.expand()[0]
    result = run_scenario(spec)
    assert result.metrics["ordered"] == 4.0  # 2 members x 2 messages
