"""Tests for the declarative spec layer."""

import pytest

from repro.experiments import DelaySpec, FaultEvent, ScenarioSpec
from repro.net import ConstantDelay, ExponentialDelay, SpikeDelay, UniformDelay


def test_delay_spec_builds_each_kind():
    assert isinstance(DelaySpec(kind="constant", value=2.0).build(), ConstantDelay)
    assert isinstance(DelaySpec(kind="uniform", low=0.1, high=0.5).build(), UniformDelay)
    assert isinstance(
        DelaySpec(kind="exponential", floor=0.1, mean=1.0).build(), ExponentialDelay
    )
    spike = DelaySpec(kind="spike", low=0.1, high=0.5, spike_probability=0.2, spike_ms=50.0)
    assert isinstance(spike.build(), SpikeDelay)


def test_delay_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        DelaySpec(kind="warp").build()


def test_delay_spec_roundtrip():
    spec = DelaySpec(kind="spike", low=0.5, high=2.0, spike_probability=0.5, spike_ms=800.0)
    assert DelaySpec.from_dict(spec.to_dict()) == spec


def test_fault_event_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultEvent(at=0.0, kind="meteor")


def test_fault_event_rejects_negative_time():
    with pytest.raises(ValueError):
        FaultEvent(at=-1.0, kind="crash", member=0)


def test_fault_event_roundtrip():
    event = FaultEvent(at=500.0, kind="partition", groups=((0, 1), (2, 3)))
    assert FaultEvent.from_dict(event.to_dict()) == event


def test_scenario_spec_rejects_unknown_system():
    with pytest.raises(ValueError):
        ScenarioSpec(system="raft")


def test_scenario_spec_rejects_bad_write_ratio():
    with pytest.raises(ValueError):
        ScenarioSpec(write_ratio=1.5)


def test_scenario_spec_roundtrip_with_faults():
    spec = ScenarioSpec(
        system="fs-newtop",
        n_members=5,
        delay=DelaySpec(kind="exponential", floor=0.1, mean=2.0, cap=10.0),
        faults=(
            FaultEvent(at=100.0, kind="byzantine", member=1, flags=("corrupt_outputs",)),
            FaultEvent(at=200.0, kind="heal"),
        ),
        crypto_scale=2.0,
    )
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_byzantine_members_derived_from_fault_plan():
    spec = ScenarioSpec(
        system="fs-newtop",
        faults=(
            FaultEvent(at=10.0, kind="byzantine", member=2, flags=("mute_lan",)),
            FaultEvent(at=20.0, kind="byzantine", member=0, flags=("mute_lan",)),
            FaultEvent(at=30.0, kind="crash", member=1),
        ),
    )
    assert spec.byzantine_members == (0, 2)


def test_replace_returns_modified_copy():
    base = ScenarioSpec(n_members=4)
    changed = base.replace(n_members=8, seed=9)
    assert changed.n_members == 8 and changed.seed == 9
    assert base.n_members == 4 and base.seed == 0
