"""Property-based serialisation round-trips for the spec messages.

Every declarative value that crosses a process or storage boundary --
``ScenarioSpec`` and its nested ``DelaySpec`` / ``FaultEvent`` /
``BatchingSpec`` / ``ShardSpec`` / ``AdversarySpec`` -- must survive
``to_dict`` -> JSON -> ``from_dict`` unchanged: the campaign runner
pickles specs into worker processes and the JSONL store re-reads them
for reports.  Hypothesis generates valid specs instead of the
hand-picked fixtures in ``test_spec.py``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.spec import AdversarySpec
from repro.app.spec import AppSpec
from repro.experiments.spec import (
    BatchingSpec,
    DelaySpec,
    FaultEvent,
    ScenarioSpec,
    ShardSpec,
)
from repro.service.spec import ServiceSpec

DELAYS = st.one_of(
    st.builds(DelaySpec, kind=st.just("constant"), value=st.floats(0.1, 50.0)),
    st.builds(
        DelaySpec,
        kind=st.just("uniform"),
        low=st.floats(0.1, 1.0),
        high=st.floats(1.0, 10.0),
    ),
    st.builds(
        DelaySpec,
        kind=st.just("spike"),
        low=st.floats(0.1, 1.0),
        high=st.floats(1.0, 5.0),
        spike_probability=st.floats(0.0, 1.0),
        spike_ms=st.floats(0.0, 500.0),
    ),
)

BATCHING = st.one_of(
    st.none(),
    st.builds(
        BatchingSpec,
        max_batch=st.integers(1, 64),
        max_delay_ms=st.floats(0.5, 50.0),
        max_inflight=st.integers(1, 16),
    ),
)

SHARDS = st.one_of(
    st.none(),
    st.builds(
        ShardSpec,
        shards=st.integers(1, 8),
        cross_shard_ratio=st.floats(0.0, 1.0),
        keyspace=st.integers(8, 256),
    ),
)

FAULTS = st.lists(
    st.one_of(
        st.builds(
            FaultEvent,
            at=st.floats(0.0, 5000.0),
            kind=st.just("crash"),
            member=st.integers(0, 3),
        ),
        st.builds(
            FaultEvent,
            at=st.floats(0.0, 5000.0),
            kind=st.just("byzantine"),
            member=st.integers(0, 3),
            flags=st.just(("corrupt_outputs",)),
        ),
        st.builds(FaultEvent, at=st.floats(0.0, 5000.0), kind=st.just("heal")),
    ),
    max_size=3,
).map(tuple)

ADVERSARIES = st.lists(
    st.one_of(
        st.builds(
            AdversarySpec,
            kind=st.sampled_from(("equivocate", "corrupt", "mute", "replay")),
            at=st.floats(0.0, 2000.0),
            member=st.integers(0, 3),
        ),
        st.builds(AdversarySpec, kind=st.just("shard_reorder"), at=st.floats(0.0, 2000.0)),
        st.builds(
            AdversarySpec,
            kind=st.just("churn_storm"),
            at=st.floats(0.0, 2000.0),
            members=st.lists(st.integers(0, 3), min_size=1, max_size=3).map(tuple),
            spacing=st.floats(0.0, 500.0),
        ),
    ),
    max_size=2,
).map(tuple)


GATEWAYS = st.one_of(
    st.none(),
    st.builds(
        ServiceSpec,
        clients=st.integers(1, 16),
        rate_limit_per_s=st.floats(1.0, 5000.0),
        burst=st.integers(1, 500),
        max_inflight=st.integers(1, 2048),
        retry_after_ms=st.floats(1.0, 1000.0),
        sessions=st.integers(1, 2000),
        ops_per_session=st.integers(1, 16),
        think_ms=st.floats(0.5, 500.0),
        zipf_s=st.floats(0.0, 3.0),
        keyspace=st.integers(1, 256),
        subscribers=st.integers(0, 8),
        reconnect_every=st.integers(0, 200),
        max_retries=st.integers(0, 64),
        ramp_ms=st.floats(0.0, 10_000.0),
        key_seed=st.integers(0, 2**16),
    ),
)


APPS = st.one_of(
    st.none(),
    st.builds(
        AppSpec,
        checkpoint_every=st.integers(1, 32),
        retain_checkpoints=st.integers(1, 8),
        transfer_delay_ms=st.floats(0.0, 500.0),
        recovery_deadline_ms=st.one_of(st.none(), st.floats(1.0, 10_000.0)),
    ),
)


def scenario_specs():
    return st.builds(
        ScenarioSpec,
        system=st.just("fs-newtop"),
        n_members=st.sampled_from((2, 4, 8)),
        messages_per_member=st.integers(1, 40),
        interval=st.floats(5.0, 500.0),
        message_size=st.integers(0, 4096),
        write_ratio=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
        delay=DELAYS,
        faults=st.just(()),  # sharded specs reject fault plans
        adversaries=ADVERSARIES,
        batching=BATCHING,
        shard=SHARDS,
        crypto_scale=st.floats(0.1, 4.0),
        collapsed=st.booleans(),
        gateway=GATEWAYS,
        app=APPS,
    )


@given(gateway=GATEWAYS.filter(lambda g: g is not None))
@settings(max_examples=40, deadline=None)
def test_service_spec_round_trips(gateway):
    assert ServiceSpec.from_dict(json.loads(json.dumps(gateway.to_dict()))) == gateway


@given(spec=scenario_specs())
@settings(max_examples=80, deadline=None)
def test_scenario_spec_round_trips_through_json(spec):
    wire = json.loads(json.dumps(spec.to_dict()))
    assert ScenarioSpec.from_dict(wire) == spec


@given(
    spec=st.builds(
        ScenarioSpec,
        system=st.sampled_from(("newtop", "pbft")),
        n_members=st.sampled_from((2, 4, 8)),
        faults=FAULTS,
        delay=DELAYS,
    )
)
@settings(max_examples=40, deadline=None)
def test_unsharded_spec_with_faults_round_trips(spec):
    wire = json.loads(json.dumps(spec.to_dict()))
    assert ScenarioSpec.from_dict(wire) == spec


@given(shard=SHARDS.filter(lambda s: s is not None))
@settings(max_examples=40, deadline=None)
def test_shard_spec_round_trips(shard):
    assert ShardSpec.from_dict(json.loads(json.dumps(shard.to_dict()))) == shard


@given(app=APPS.filter(lambda a: a is not None))
@settings(max_examples=40, deadline=None)
def test_app_spec_round_trips(app):
    assert AppSpec.from_dict(json.loads(json.dumps(app.to_dict()))) == app


@given(
    app=APPS.filter(lambda a: a is not None),
    at=st.floats(0.0, 2000.0),
    member=st.integers(0, 3),
    gap=st.floats(1.0, 5000.0),
)
@settings(max_examples=40, deadline=None)
def test_crash_recover_fault_round_trips_with_its_rejoin_time(app, at, member, gap):
    spec = ScenarioSpec(
        system="fs-newtop",
        n_members=4,
        app=app,
        faults=(
            FaultEvent(at=at, kind="crash_recover", member=member, rejoin_at=at + gap),
        ),
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    assert ScenarioSpec.from_dict(wire) == spec
