"""The audited side of the experiments layer: every registered
adversarial scenario passes its oracles deterministically, campaigns
can audit per run and aggregate the verdicts, and the worker clamp
keeps small boxes honest."""

import multiprocessing

import pytest

from repro.analysis import audit_summary
from repro.experiments import (
    Campaign,
    audit_scenario,
    clamp_jobs,
    get_scenario,
    scenario_names,
)

ADVERSARIAL = [name for name in scenario_names() if name.startswith("adv_")]


def test_registry_has_the_adversarial_catalogue():
    assert len(ADVERSARIAL) >= 8
    # one scenario per leaf strategy family plus the combinators
    for expected in (
        "adv_equivocation",
        "adv_replay",
        "adv_selective_mute",
        "adv_tamper_signature",
        "adv_scramble_burst",
        "adv_delay_skew",
        "adv_intermittent_mute",
        "adv_churn_storm",
        "adv_clean_baseline",
    ):
        assert expected in ADVERSARIAL


@pytest.mark.parametrize("name", ADVERSARIAL)
def test_adversarial_scenario_passes_its_oracles(name):
    scenario = get_scenario(name)
    for system, _label, spec in scenario.expand():
        run = audit_scenario(spec, scenario=name)
        assert run.report.ok, f"{name} [{system}]:\n{run.report.render()}"
        if spec.adversaries and name != "adv_clean_baseline":
            assert run.report.stats["fail_signals"] >= 1.0 or name == "adv_churn_storm"


def test_adversarial_scenarios_are_deterministic():
    scenario = get_scenario("adv_replay")
    _system, _label, spec = scenario.expand()[0]
    first = audit_scenario(spec, scenario=scenario.name).report.to_dict()
    second = audit_scenario(spec, scenario=scenario.name).report.to_dict()
    assert first == second


def test_pbft_specs_are_not_auditable():
    scenario = get_scenario("pbft_head_to_head")
    _system, _label, spec = next(
        (s, x, sp) for s, x, sp in scenario.expand() if sp.system == "pbft"
    )
    with pytest.raises(ValueError):
        audit_scenario(spec)


# ----------------------------------------------------------------------
# campaign integration
# ----------------------------------------------------------------------
def test_campaign_audit_mode_annotates_records():
    campaign = Campaign(get_scenario("adv_clean_baseline"), audit=True)
    records = campaign.execute(jobs=1)
    assert records
    for record in records:
        assert record.metrics["audit_ok"] == 1.0
        assert record.metrics["audit_violations"] == 0.0
    summary = audit_summary(records)
    assert summary["audited"] == len(records)
    assert summary["failed"] == 0
    assert summary["failing_cells"] == []


def test_audit_summary_reports_failures():
    class FakeRecord:
        def __init__(self, ok):
            self.scenario = "s"
            self.system = "fs-newtop"
            self.x_label = "x"
            self.repeat = 0
            self.metrics = {"audit_ok": 1.0 if ok else 0.0, "audit_violations": 0.0 if ok else 2.0}

    records = [FakeRecord(True), FakeRecord(False)]
    summary = audit_summary(records)
    assert summary == {
        "audited": 2,
        "failed": 1,
        "violations": 2,
        "failing_cells": [("s", "fs-newtop", "x", 0)],
    }


def test_unaudited_records_are_ignored_by_summary():
    class Plain:
        metrics = {"throughput_msgs_per_s": 1.0}

    assert audit_summary([Plain()])["audited"] == 0


# ----------------------------------------------------------------------
# worker clamp
# ----------------------------------------------------------------------
def test_clamp_jobs_honours_cpu_ceiling():
    ceiling = max(1, multiprocessing.cpu_count() - 1)
    assert clamp_jobs(None, tasks=100) == ceiling
    assert clamp_jobs(10_000, tasks=100) == ceiling
    assert clamp_jobs(1, tasks=100) == 1


def test_clamp_jobs_never_exceeds_tasks_or_drops_below_one():
    assert clamp_jobs(8, tasks=1) == 1
    assert clamp_jobs(None, tasks=0) == 1


def test_clamp_logs_effective_value(caplog):
    with caplog.at_level("INFO", logger="repro.experiments.campaign"):
        clamp_jobs(10_000, tasks=4)
    assert any("clamped" in message or "worker" in message for message in caplog.messages)
