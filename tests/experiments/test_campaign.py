"""Tests for the campaign runner, seeds, store and aggregation."""

import pytest

from repro.analysis import aggregate, aggregate_records
from repro.experiments import (
    Campaign,
    ResultStore,
    RunRecord,
    Scenario,
    ScenarioSpec,
    SweepPoint,
    derive_seed,
)

CHEAP = Scenario(
    name="cheap-campaign",
    title="smoke",
    description="cheapest possible grid for campaign tests",
    base=ScenarioSpec(
        system="newtop",
        n_members=2,
        messages_per_member=2,
        interval=100.0,
        settle_ms=5_000.0,
    ),
    systems=("newtop",),
    sweep_axis="members",
    sweep=(
        SweepPoint(label=2, overrides={"n_members": 2}),
        SweepPoint(label=3, overrides={"n_members": 3}),
    ),
)


# ----------------------------------------------------------------------
# planning and seeds
# ----------------------------------------------------------------------
def test_plan_covers_the_full_grid():
    tasks = Campaign(CHEAP, repeats=3).plan()
    assert len(tasks) == 1 * 2 * 3  # systems x points x repeats
    coords = {(t.system, t.x_label, t.repeat) for t in tasks}
    assert len(coords) == len(tasks)


def test_plan_seeds_are_deterministic_and_distinct_per_cell():
    first = Campaign(CHEAP, repeats=3, base_seed=7).plan()
    second = Campaign(CHEAP, repeats=3, base_seed=7).plan()
    assert [t.spec.seed for t in first] == [t.spec.seed for t in second]
    # Within one grid cell, every repeat runs a different seed.
    by_cell: dict = {}
    for task in first:
        by_cell.setdefault((task.system, task.x_label), []).append(task.spec.seed)
    for seeds in by_cell.values():
        assert len(set(seeds)) == len(seeds)


def test_repeat_zero_runs_the_curated_spec_seed():
    """With the default base seed, repeat 0 is the registry's exact
    configuration -- what the benchmarks measure -- so single-repeat
    campaigns cannot drift."""
    for task in Campaign(CHEAP, repeats=2).plan():
        if task.repeat == 0:
            assert task.spec.seed == CHEAP.base.seed
        else:
            assert task.spec.seed != CHEAP.base.seed
    # A nonzero base seed shifts repeat 0 deterministically.
    shifted = Campaign(CHEAP, repeats=1, base_seed=99).plan()
    assert all(t.spec.seed == CHEAP.base.seed + 99 for t in shifted)


def test_base_seed_changes_all_run_seeds():
    a = Campaign(CHEAP, repeats=2, base_seed=0).plan()
    b = Campaign(CHEAP, repeats=2, base_seed=1).plan()
    assert all(x.spec.seed != y.spec.seed for x, y in zip(a, b))


def test_empty_systems_rejected():
    with pytest.raises(ValueError):
        Campaign(CHEAP, systems=())


def test_derive_seed_stable_and_in_range():
    seed = derive_seed(0, "fig7_throughput", "newtop", 5, 2)
    assert seed == derive_seed(0, "fig7_throughput", "newtop", 5, 2)
    assert 0 <= seed < 2**31


def test_invalid_repeats_and_jobs_rejected():
    with pytest.raises(ValueError):
        Campaign(CHEAP, repeats=0)
    with pytest.raises(ValueError):
        Campaign(CHEAP).execute(jobs=0)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def test_parallel_execution_matches_serial():
    """jobs=4 must be a pure speedup: identical records, same order."""
    serial = Campaign(CHEAP, repeats=2).execute(jobs=1)
    parallel = Campaign(CHEAP, repeats=2).execute(jobs=4)
    assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]


def test_execute_persists_to_store(tmp_path):
    store = ResultStore(tmp_path / "out.jsonl")
    records = Campaign(CHEAP, repeats=2).execute(jobs=1, store=store)
    loaded = store.load()
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]
    # Append-only: a second campaign accumulates.
    Campaign(CHEAP, repeats=1).execute(jobs=1, store=store)
    assert len(store.load()) == len(records) + 2


def test_store_load_missing_file_is_empty(tmp_path):
    assert ResultStore(tmp_path / "nope.jsonl").load() == []


def test_run_record_roundtrip():
    record = RunRecord(
        scenario="s", system="newtop", x_label=3, repeat=1, seed=9,
        metrics={"ordered": 4.0}, spec=None,
    )
    assert RunRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# aggregation math
# ----------------------------------------------------------------------
def test_aggregate_order_statistics():
    stats = aggregate([4.0, 1.0, 3.0, 2.0])
    assert stats.n == 4
    assert stats.mean == 2.5
    assert stats.p50 == 2.0  # nearest-rank on the sorted sample
    assert stats.p99 == 4.0
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0


def test_aggregate_rejects_empty():
    with pytest.raises(ValueError):
        aggregate([])


def _record(system, x, repeat, **metrics):
    return RunRecord(
        scenario="s", system=system, x_label=x, repeat=repeat, seed=0, metrics=metrics
    )


def test_aggregate_records_groups_by_cell():
    records = [
        _record("newtop", 2, 0, tput=10.0),
        _record("newtop", 2, 1, tput=20.0),
        _record("newtop", 3, 0, tput=30.0),
        _record("fs-newtop", 2, 0, tput=5.0),
    ]
    stats = aggregate_records(records, "tput", key=lambda r: (r.system, r.x_label))
    assert stats[("newtop", 2)].mean == 15.0
    assert stats[("newtop", 2)].n == 2
    assert stats[("newtop", 3)].mean == 30.0
    assert stats[("fs-newtop", 2)].mean == 5.0


def test_aggregate_records_skips_missing_metric():
    records = [_record("newtop", 2, 0, tput=10.0), _record("newtop", 2, 1, other=1.0)]
    stats = aggregate_records(records, "tput", key=lambda r: r.system)
    assert stats["newtop"].n == 1


def test_campaign_repeats_aggregate_across_seeds():
    """End-to-end: repeats land in one cell and aggregate cleanly."""
    records = Campaign(CHEAP, repeats=3).execute(jobs=1)
    stats = aggregate_records(records, "ordered", key=lambda r: (r.system, r.x_label))
    assert stats[("newtop", 2)].n == 3
    assert stats[("newtop", 2)].mean == 4.0  # 2 members x 2 msgs, every repeat
