"""BatchingSpec plumbing, the scale_* family, and batched-run soundness."""

import pytest

from repro.analysis import batching_summary
from repro.experiments import (
    BatchingSpec,
    Campaign,
    ScenarioSpec,
    audit_scenario,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: A deliberately small high-load configuration: 4 members streaming
#: every 15ms -- enough pressure that batching visibly amortises, small
#: enough for the unit suite.
HIGH_LOAD = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=8,
    interval=15.0,
    message_size=3,
    seed=1,
    settle_ms=15_000.0,
)
BATCHED = HIGH_LOAD.replace(batching=BatchingSpec(max_batch=8))


# ----------------------------------------------------------------------
# spec plumbing
# ----------------------------------------------------------------------
def test_batching_spec_validation():
    with pytest.raises(ValueError):
        BatchingSpec(max_batch=0)
    with pytest.raises(ValueError):
        BatchingSpec(max_delay_ms=-1.0)
    with pytest.raises(ValueError):
        BatchingSpec(max_inflight=0)


def test_batching_spec_roundtrips_through_dict():
    spec = BATCHED
    assert spec.to_dict()["batching"] == {
        "max_batch": 8,
        "max_delay_ms": 4.0,
        "max_inflight": 4,
    }
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    assert ScenarioSpec.from_dict(HIGH_LOAD.to_dict()).batching is None


def test_scale_family_registered():
    names = scenario_names()
    for expected in ("scale_batch_ab", "scale_groups", "scale_high_rate"):
        assert expected in names
    ab = get_scenario("scale_batch_ab")
    assert [p.label for p in ab.sweep] == ["off", "b4", "b8", "b16"]
    assert ab.spec_for("fs-newtop", ab.sweep[0]).batching is None
    assert ab.spec_for("fs-newtop", ab.sweep[2]).batching == BatchingSpec(max_batch=8)


# ----------------------------------------------------------------------
# batched runs: determinism, soundness, amortisation
# ----------------------------------------------------------------------
def test_batched_run_is_deterministic():
    first = run_scenario(BATCHED)
    second = run_scenario(BATCHED)
    assert first.metrics == second.metrics


def test_batched_beats_unbatched_at_high_load():
    unbatched = run_scenario(HIGH_LOAD).metrics
    batched = run_scenario(BATCHED).metrics
    # Same workload fully ordered on both paths, no spurious signals.
    assert batched["ordered"] == unbatched["ordered"] == 32.0
    assert batched["fail_signals"] == unbatched["fail_signals"] == 0.0
    # The amortisation: fewer signing operations per ordered message,
    # and more ordered messages per second.
    assert batched["signatures_per_ordered"] < unbatched["signatures_per_ordered"]
    assert batched["throughput_msgs_per_s"] > unbatched["throughput_msgs_per_s"]
    assert batched["batch_mean_size"] > 1.0
    assert unbatched["batches_signed"] == 0.0


def test_batched_audit_passes_all_oracles():
    audited = audit_scenario(BATCHED.replace(collapsed=False), scenario="batched")
    assert audited.report.ok, audited.report.render()
    # All six oracles ran against real traffic.
    checked = {v.oracle: v.checked for v in audited.report.verdicts}
    assert checked["total-order"] > 0
    assert checked["double-sign-soundness"] > 0


def test_campaign_batching_summary():
    scenario = get_scenario("scale_batch_ab")
    # Shrink the grid for the unit suite: off vs b8, tiny load.
    campaign = Campaign(scenario, repeats=1)
    tasks = [
        t
        for t in campaign.plan()
        if t.x_label in ("off", "b8")
    ]
    from repro.experiments.campaign import execute_task

    records = [
        execute_task(
            type(t)(
                scenario=t.scenario,
                system=t.system,
                x_label=t.x_label,
                repeat=t.repeat,
                spec=t.spec.replace(
                    n_members=3, messages_per_member=4, settle_ms=10_000.0
                ),
            )
        )
        for t in tasks
    ]
    summary = batching_summary(records)
    assert ("fs-newtop", "b8") in summary["batched_cells"]
    assert ("fs-newtop", "off") in summary["unbatched_cells"]
    assert summary["amortisation"] > 1.0
    assert summary["degenerate_cells"] == []


def test_batching_summary_excludes_non_signing_and_degenerate_cells():
    import dataclasses

    @dataclasses.dataclass
    class FakeRecord:
        system: str
        x_label: str
        metrics: dict

    records = [
        # newtop comparator: signs nothing -- not an unbatched comparator.
        FakeRecord("newtop", 8, {"signatures": 0.0, "signatures_per_ordered": 0.0}),
        # collapsed batched cell: signed plenty, ordered nothing.
        FakeRecord(
            "fs-newtop",
            "b8",
            {"signatures": 500.0, "signatures_per_ordered": 0.0,
             "batches_signed": 100.0, "batch_mean_size": 2.0},
        ),
        # healthy unbatched cell.
        FakeRecord(
            "fs-newtop",
            "off",
            {"signatures": 800.0, "signatures_per_ordered": 100.0,
             "batches_signed": 0.0, "batch_mean_size": 0.0},
        ),
    ]
    summary = batching_summary(records)
    assert summary["degenerate_cells"] == [("fs-newtop", "b8")]
    assert list(summary["unbatched_cells"]) == [("fs-newtop", "off")]
    assert summary["batched_cells"] == {}
    # No batched comparators survive, so no amortisation ratio is claimed.
    assert "amortisation" not in summary
