"""Tests for the from-scratch RSA implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import generate_rsa_keypair


def _pair(seed=1, bits=256):
    return generate_rsa_keypair(bits=bits, rng=random.Random(seed))


def test_sign_verify_roundtrip():
    pair = _pair()
    sig = pair.sign(b"hello world")
    assert pair.public.verify(b"hello world", sig)


def test_verify_rejects_different_message():
    pair = _pair()
    sig = pair.sign(b"hello world")
    assert not pair.public.verify(b"hello worle", sig)


def test_verify_rejects_tampered_signature():
    pair = _pair()
    sig = pair.sign(b"msg")
    assert not pair.public.verify(b"msg", sig + 1)
    assert not pair.public.verify(b"msg", -sig)
    assert not pair.public.verify(b"msg", sig + pair.public.n)


def test_other_key_cannot_verify():
    a, b = _pair(seed=1), _pair(seed=2)
    sig = a.sign(b"msg")
    assert not b.public.verify(b"msg", sig)


def test_other_key_cannot_forge():
    a, b = _pair(seed=1), _pair(seed=2)
    forged = b.sign(b"msg")
    assert not a.public.verify(b"msg", forged)


def test_keypair_deterministic_per_seed():
    assert _pair(seed=3).public == _pair(seed=3).public
    assert _pair(seed=3).public != _pair(seed=4).public


def test_modulus_bits():
    for bits in (256, 384, 512):
        pair = _pair(seed=9, bits=bits)
        assert pair.public.bits == bits


def test_rejects_modulus_too_small_for_md5():
    with pytest.raises(ValueError):
        generate_rsa_keypair(bits=128, rng=random.Random(0))


def test_empty_message_signs():
    pair = _pair()
    assert pair.public.verify(b"", pair.sign(b""))


@given(st.binary(max_size=256))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(data):
    pair = _pair(seed=11)
    assert pair.public.verify(data, pair.sign(data))


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_cross_message_rejection(a, b):
    pair = _pair(seed=12)
    sig = pair.sign(a)
    assert pair.public.verify(b, sig) == (a == b or pair.sign(b) == sig)


# ----------------------------------------------------------------------
# digest reduction (shared between sign_int and verify_int)
# ----------------------------------------------------------------------
def test_reduce_digest_shared_rule():
    from repro.crypto.rsa import reduce_digest

    pair = _pair()
    n = pair.public.n
    assert reduce_digest(5, n) == 5
    assert reduce_digest(n + 5, n) == 5
    assert reduce_digest(n, n) == 0


def test_oversized_digest_signs_and_verifies_consistently():
    """A digest >= n is reduced identically on both sides: signing d and
    verifying d, d % n, or d + k*n all agree (the old behaviour relied
    on an implicit `%` in each method separately)."""
    pair = _pair()
    n = pair.public.n
    digest = n + 12345
    sig = pair.sign_int(digest)
    assert pair.public.verify_int(digest, sig)
    assert pair.public.verify_int(digest % n, sig)
    assert pair.public.verify_int(digest + 3 * n, sig)
    assert not pair.public.verify_int(digest + 1, sig)


def test_negative_digest_rejected_on_both_sides():
    from repro.crypto.rsa import reduce_digest

    pair = _pair()
    with pytest.raises(ValueError):
        pair.sign_int(-1)
    with pytest.raises(ValueError):
        pair.public.verify_int(-1, 123)
    with pytest.raises(ValueError):
        reduce_digest(-7, pair.public.n)
