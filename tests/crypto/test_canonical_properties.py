"""Property-based round-trip tests of the canonical encoding.

``canonical_encode`` has no production decoder (signatures only ever
need the forward direction), so the round-trip partner lives here: a
reference decoder for the tag format.  Hypothesis then checks the
properties the signing stack relies on:

* decode(encode(v)) == v -- the encoding loses nothing (so two values
  with equal encodings are equal: injectivity);
* the encoding is insensitive to dict insertion order (two replicas
  marshalling the same mapping sign the same bytes);
* encoding is pure -- repeated calls (cache hit path included) return
  identical bytes.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.crypto.canonical import canonical_encode


# ----------------------------------------------------------------------
# reference decoder (test-only inverse of the tag format)
# ----------------------------------------------------------------------
def _take_length(data: bytes, at: int) -> tuple[int, int]:
    return struct.unpack_from(">I", data, at)[0], at + 4


def _decode(data: bytes, at: int):
    tag = data[at : at + 1]
    at += 1
    if tag == b"N":
        return None, at
    if tag == b"T":
        return True, at
    if tag == b"F":
        return False, at
    if tag == b"I":
        length, at = _take_length(data, at)
        return int(data[at : at + length].decode("ascii")), at + length
    if tag == b"D":
        return struct.unpack_from(">d", data, at)[0], at + 8
    if tag == b"S":
        length, at = _take_length(data, at)
        return data[at : at + length].decode("utf-8"), at + length
    if tag == b"B":
        length, at = _take_length(data, at)
        return bytes(data[at : at + length]), at + length
    if tag in (b"L", b"U"):
        count, at = _take_length(data, at)
        items = []
        for __ in range(count):
            item, at = _decode(data, at)
            items.append(item)
        return (items if tag == b"L" else tuple(items)), at
    if tag == b"M":
        count, at = _take_length(data, at)
        mapping = {}
        for __ in range(count):
            key, at = _decode(data, at)
            value, at = _decode(data, at)
            mapping[key] = value
        return mapping, at
    raise AssertionError(f"unexpected tag {tag!r} at offset {at - 1}")


def canonical_decode(data: bytes):
    value, end = _decode(data, 0)
    assert end == len(data), "trailing bytes after a complete value"
    return value


# ----------------------------------------------------------------------
# value strategy: everything the wire format round-trips exactly
# ----------------------------------------------------------------------
SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False),  # NaN != NaN would break the equality check
    st.text(max_size=24),
    st.binary(max_size=24),
)

VALUES = st.recursive(
    SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@given(value=VALUES)
@settings(max_examples=120, deadline=None)
def test_encode_decode_round_trip(value):
    assert canonical_decode(canonical_encode(value)) == value


@given(value=VALUES)
@settings(max_examples=60, deadline=None)
def test_encoding_is_pure(value):
    first = canonical_encode(value)
    perf.clear_caches()
    assert canonical_encode(value) == first


@given(mapping=st.dictionaries(st.text(max_size=8), SCALARS, max_size=6))
@settings(max_examples=60, deadline=None)
def test_dict_insertion_order_is_canonicalised(mapping):
    reversed_insertion = dict(reversed(list(mapping.items())))
    assert canonical_encode(mapping) == canonical_encode(reversed_insertion)


@given(
    left=st.integers(min_value=-1000, max_value=1000),
    right=st.integers(min_value=-1000, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_distinct_ints_encode_distinctly(left, right):
    # The memoised small-int path must never alias two values.
    if left != right:
        assert canonical_encode(left) != canonical_encode(right)
