"""Tests for canonical encoding: uniqueness and injectivity properties."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import CanonicalEncodingError, canonical_encode


def test_dict_key_order_irrelevant():
    assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})


def test_distinct_scalars_encode_differently():
    values = [None, True, False, 0, 1, -1, 0.5, "0", b"0", "", b"", [], (), {}]
    encodings = [canonical_encode(v) for v in values]
    assert len(set(encodings)) == len(encodings)


def test_list_vs_tuple_distinct():
    assert canonical_encode([1, 2]) != canonical_encode((1, 2))


def test_str_vs_bytes_distinct():
    assert canonical_encode("ab") != canonical_encode(b"ab")


def test_int_vs_float_distinct():
    assert canonical_encode(1) != canonical_encode(1.0)


def test_bool_vs_int_distinct():
    assert canonical_encode(True) != canonical_encode(1)
    assert canonical_encode(False) != canonical_encode(0)


def test_nesting_boundaries_unambiguous():
    assert canonical_encode([[1], [2]]) != canonical_encode([[1, 2]])
    assert canonical_encode(["ab", "c"]) != canonical_encode(["a", "bc"])


def test_dataclass_encoding_includes_type_and_fields():
    @dataclasses.dataclass(frozen=True)
    class Point:
        x: int
        y: int

    @dataclasses.dataclass(frozen=True)
    class Pair:
        x: int
        y: int

    assert canonical_encode(Point(1, 2)) == canonical_encode(Point(1, 2))
    assert canonical_encode(Point(1, 2)) != canonical_encode(Point(2, 1))
    assert canonical_encode(Point(1, 2)) != canonical_encode(Pair(1, 2))


def test_frozenset_order_independent():
    assert canonical_encode(frozenset({1, 2, 3})) == canonical_encode(frozenset({3, 1, 2}))


def test_mixed_dict_keys_supported():
    assert canonical_encode({1: "a", "1": "b"})


def test_unsupported_type_raises():
    with pytest.raises(CanonicalEncodingError):
        canonical_encode(object())
    with pytest.raises(CanonicalEncodingError):
        canonical_encode({1, 2})  # mutable set has no canonical order tag


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=5)
    | st.tuples(children)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


@given(json_like)
@settings(max_examples=200)
def test_encoding_is_deterministic(value):
    assert canonical_encode(value) == canonical_encode(value)


@given(json_like, json_like)
@settings(max_examples=200)
def test_encoding_is_injective_on_samples(a, b):
    if canonical_encode(a) == canonical_encode(b):
        assert a == b
