"""Tests for signers, keystore, and double-signature validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    DoubleSigned,
    HmacScheme,
    KeyStore,
    RsaScheme,
    SignatureInvalid,
    UnknownSigner,
)
from repro.crypto.signing import Signature


def _store(scheme=None):
    store = KeyStore(scheme if scheme is not None else HmacScheme())
    compare = store.new_signer("FSO-p", random.Random(1))
    compare_prime = store.new_signer("FSO-p'", random.Random(2))
    return store, compare, compare_prime


@pytest.mark.parametrize("scheme", [HmacScheme(), RsaScheme(bits=256)])
def test_single_sign_roundtrip(scheme):
    store, signer, __ = _store(scheme)
    signed = signer.sign_payload({"kind": "output", "seq": 4})
    assert store.check_signed(signed)
    assert signed.signer == "FSO-p"


@pytest.mark.parametrize("scheme", [HmacScheme(), RsaScheme(bits=256)])
def test_double_sign_roundtrip(scheme):
    store, a, b = _store(scheme)
    double = b.countersign(a.sign_payload("result"))
    assert store.check_double(double)
    assert double.signers == ("FSO-p", "FSO-p'")
    store.require_double(double, expected_signers=("FSO-p'", "FSO-p"))


def test_tampered_payload_rejected():
    store, a, b = _store()
    double = b.countersign(a.sign_payload("result"))
    tampered = DoubleSigned("other", double.first, double.second)
    assert not store.check_double(tampered)
    with pytest.raises(SignatureInvalid):
        store.require_double(tampered)


def test_grafted_countersignature_rejected():
    """A second signature must bind to the first: swapping in a second
    signature taken from a different message must fail."""
    store, a, b = _store()
    one = b.countersign(a.sign_payload("msg-1"))
    two = b.countersign(a.sign_payload("msg-2"))
    grafted = DoubleSigned("msg-1", one.first, two.second)
    assert not store.check_double(grafted)


def test_self_countersign_detected_by_expected_signers():
    """A faulty node double-signing with only its own key must not pass a
    destination's expected-signers check."""
    store, a, __ = _store()
    self_double = a.countersign(a.sign_payload("forged"))
    # The signature math itself is fine...
    assert store.check_double(self_double)
    # ...but the destination pins the signer set.
    with pytest.raises(SignatureInvalid):
        store.require_double(self_double, expected_signers=("FSO-p", "FSO-p'"))


def test_unknown_signer_raises():
    store, a, __ = _store()
    signed = a.sign_payload("x")
    forged = type(signed)(signed.payload, Signature("stranger", signed.signature.value))
    with pytest.raises(UnknownSigner):
        store.check_signed(forged)


def test_forged_signature_value_rejected():
    store, a, __ = _store()
    signed = a.sign_payload("x")
    forged = type(signed)(signed.payload, Signature(a.identity, b"\x00" * 32))
    assert not store.check_signed(forged)


def test_wrong_value_type_rejected():
    store, a, __ = _store()
    signed = a.sign_payload("x")
    forged = type(signed)(signed.payload, Signature(a.identity, 123456))
    assert not store.check_signed(forged)


def test_duplicate_identity_rejected():
    store, __, __ = _store()
    with pytest.raises(ValueError):
        store.new_signer("FSO-p", random.Random(9))


def test_keystore_inventory():
    store, __, __ = _store()
    assert store.knows("FSO-p") and store.knows("FSO-p'")
    assert not store.knows("other")
    assert store.identities() == ["FSO-p", "FSO-p'"]


def test_cannot_sign_for_other_identity():
    """With RSA, replica b cannot create signatures verifying under a's
    identity (assumption A5 enforced by arithmetic)."""
    store, a, b = _store(RsaScheme(bits=256))
    fake = type(a.sign_payload("x"))(
        "x", Signature("FSO-p", b.sign_payload("x").signature.value)
    )
    assert not store.check_signed(fake)


@given(
    st.recursive(
        st.none() | st.booleans() | st.integers() | st.text(max_size=10),
        lambda c: st.lists(c, max_size=4) | st.dictionaries(st.text(max_size=4), c, max_size=4),
        max_leaves=10,
    )
)
@settings(max_examples=80, deadline=None)
def test_sign_verify_property(payload):
    store, a, b = _store()
    assert store.check_signed(a.sign_payload(payload))
    assert store.check_double(b.countersign(a.sign_payload(payload)))


# ----------------------------------------------------------------------
# verification memo
# ----------------------------------------------------------------------
def test_verify_cached_agrees_with_verify():
    scheme = HmacScheme()
    private, public = scheme.generate(random.Random(5))
    data = b"some payload"
    value = scheme.sign(private, data)
    assert scheme.verify_cached(public, data, value)
    # second call comes from the memo and must agree
    assert scheme.verify_cached(public, data, value)
    assert scheme._verify_cache.stats.hits == 1
    assert not scheme.verify_cached(public, data, b"not the tag")
    assert not scheme.verify_cached(public, b"other payload", value)


def test_verify_cached_caches_negative_verdicts():
    scheme = HmacScheme()
    __, public = scheme.generate(random.Random(6))
    assert not scheme.verify_cached(public, b"data", b"bogus")
    assert not scheme.verify_cached(public, b"data", b"bogus")
    assert scheme._verify_cache.stats.hits == 1


def test_verify_caches_are_per_scheme_instance():
    """Two simulations (two schemes) binding the same identity to
    different keys must not share verdicts."""
    scheme_a, scheme_b = HmacScheme(), HmacScheme()
    private_a, public_a = scheme_a.generate(random.Random(1))
    data = b"payload"
    tag = scheme_a.sign(private_a, data)
    assert scheme_a.verify_cached(public_a, data, tag)
    # scheme_b never saw this key; a fresh keystore in another sim
    # with different material must re-verify, not inherit the verdict.
    private_b, public_b = scheme_b.generate(random.Random(2))
    assert not scheme_b.verify_cached(public_b, data, tag)


def test_repeated_check_double_hits_memo_and_agrees():
    """The n-destination pattern: the same DoubleSigned object checked
    repeatedly gives one real verification pair plus memo hits."""
    rng = random.Random(9)
    store = KeyStore(HmacScheme())
    a = store.new_signer("a", rng)
    b = store.new_signer("b", rng)
    double = b.countersign(a.sign_payload(("out", 1)))
    assert store.check_double(double)
    hits_before = store._double_verdicts.stats.hits
    for __ in range(5):
        assert store.check_double(double)
    assert store._double_verdicts.stats.hits == hits_before + 5


def test_check_double_verdict_memo_does_not_leak_across_messages():
    """A grafted second signature lives in a different DoubleSigned
    object, so the verdict memo cannot vouch for it."""
    rng = random.Random(11)
    store = KeyStore(HmacScheme())
    a = store.new_signer("a", rng)
    b = store.new_signer("b", rng)
    good = b.countersign(a.sign_payload(("out", 1)))
    assert store.check_double(good)
    other = b.countersign(a.sign_payload(("out", 2)))
    grafted = DoubleSigned(payload=good.payload, first=good.first, second=other.second)
    assert not store.check_double(grafted)
    # and the verdicts stay stable on re-check
    assert store.check_double(good)
    assert not store.check_double(grafted)
