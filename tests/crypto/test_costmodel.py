"""Tests for the crypto cost model, including the provider tables and
the sim/live deadline relationship the calibration layer preserves."""

import pytest

from repro.crypto import CryptoCostModel
from repro.crypto.costmodel import FREE_CRYPTO, PROVIDER_COSTS, provider_cost_model
from repro.transport.calibration import CalibrationResult


def test_sign_cost_dominated_by_private_key_op():
    model = CryptoCostModel()
    assert model.sign_cost(3) > model.verify_cost(3)
    # Signing is size-insensitive apart from the digest.
    small, large = model.sign_cost(3), model.sign_cost(10 * 1024)
    expected = model.digest_cost(10 * 1024) - model.digest_cost(3)
    assert abs((large - small) - expected) < 1e-12


def test_digest_cost_linear_in_size():
    model = CryptoCostModel(digest_base_ms=0.0, digest_ms_per_kb=1.0)
    assert abs(model.digest_cost(2048) - 2.0) < 1e-12
    assert model.digest_cost(0) == 0.0


def test_scaled():
    model = CryptoCostModel(sign_base_ms=4.0, verify_base_ms=0.4)
    half = model.scaled(0.5)
    assert half.sign_base_ms == 2.0
    assert half.verify_base_ms == 0.2
    assert half.sign_cost(100) == model.sign_cost(100) * 0.5


def test_free_crypto_is_free():
    assert FREE_CRYPTO.sign_cost(10_000) == 0.0
    assert FREE_CRYPTO.verify_cost(10_000) == 0.0
    assert FREE_CRYPTO.digest_cost(10_000) == 0.0


def test_costs_nonnegative_and_monotone_in_size():
    model = CryptoCostModel()
    last = -1.0
    for size in (0, 10, 1000, 100_000):
        cost = model.sign_cost(size)
        assert cost >= 0
        assert cost >= last
        last = cost


# ----------------------------------------------------------------------
# provider-aware tables
# ----------------------------------------------------------------------
def test_pair_verification_defaults_to_two_sequential_checks():
    model = CryptoCostModel()
    assert model.pair_verify_factor == 2.0
    assert model.double_verify_cost(256) == model.verify_cost(256) * 2.0


def test_provider_tables():
    # The paper's table is the anchor; hmac deliberately shares it (it
    # exists to cut host time, not simulated time), and ed25519 is
    # strictly cheaper on every axis with an amortised pair factor.
    assert provider_cost_model("rsa") == CryptoCostModel()
    assert provider_cost_model("hmac") == provider_cost_model("rsa")
    fast = provider_cost_model("ed25519")
    slow = provider_cost_model("rsa")
    assert fast.sign_base_ms < slow.sign_base_ms
    assert fast.verify_base_ms < slow.verify_base_ms
    assert fast.digest_ms_per_kb < slow.digest_ms_per_kb
    assert 1.0 <= fast.pair_verify_factor < slow.pair_verify_factor
    for size in (3, 256, 100_000):
        assert fast.double_verify_cost(size) < slow.double_verify_cost(size)


def test_unknown_provider_table_raises():
    with pytest.raises(ValueError, match="no cost table"):
        provider_cost_model("post-quantum")


def test_scaled_carries_the_pair_factor():
    model = PROVIDER_COSTS["ed25519"]
    scaled = model.scaled(10.0)
    # the factor is a ratio, not a cost: ablation sweeps must not bend
    # the relationship between single and pair verification
    assert scaled.pair_verify_factor == model.pair_verify_factor
    assert scaled.double_verify_cost(64) == model.double_verify_cost(64) * 10.0


def test_calibration_preserves_the_provider_pair_factor():
    """The sim/live deadline relationship pin: a live run calibrated on
    scheme X charges the same pair-verification amortisation ratio the
    simulator charges for X's provider, so moving a scenario from sim to
    wall-clock never silently changes the shape of its deadlines."""
    measured = dict(sign_mean_ms=0.21, verify_mean_ms=0.09, samples=8)
    reference = CalibrationResult(scheme="HmacScheme", **measured)
    fast = CalibrationResult(scheme="Ed25519Scheme", **measured)
    ref_model = reference.crypto_cost_model()
    fast_model = fast.crypto_cost_model()
    # measured latencies feed through identically...
    assert ref_model.sign_base_ms == fast_model.sign_base_ms == 0.21
    assert ref_model.verify_base_ms == fast_model.verify_base_ms == 0.09
    # ...but the pair factor stays the provider's own structural ratio
    assert ref_model.pair_verify_factor == CryptoCostModel().pair_verify_factor
    assert (
        fast_model.pair_verify_factor
        == PROVIDER_COSTS["ed25519"].pair_verify_factor
    )
    assert fast_model.double_verify_cost(96) < ref_model.double_verify_cost(96)
