"""Tests for the crypto cost model."""

from repro.crypto import CryptoCostModel
from repro.crypto.costmodel import FREE_CRYPTO


def test_sign_cost_dominated_by_private_key_op():
    model = CryptoCostModel()
    assert model.sign_cost(3) > model.verify_cost(3)
    # Signing is size-insensitive apart from the digest.
    small, large = model.sign_cost(3), model.sign_cost(10 * 1024)
    expected = model.digest_cost(10 * 1024) - model.digest_cost(3)
    assert abs((large - small) - expected) < 1e-12


def test_digest_cost_linear_in_size():
    model = CryptoCostModel(digest_base_ms=0.0, digest_ms_per_kb=1.0)
    assert abs(model.digest_cost(2048) - 2.0) < 1e-12
    assert model.digest_cost(0) == 0.0


def test_scaled():
    model = CryptoCostModel(sign_base_ms=4.0, verify_base_ms=0.4)
    half = model.scaled(0.5)
    assert half.sign_base_ms == 2.0
    assert half.verify_base_ms == 0.2
    assert half.sign_cost(100) == model.sign_cost(100) * 0.5


def test_free_crypto_is_free():
    assert FREE_CRYPTO.sign_cost(10_000) == 0.0
    assert FREE_CRYPTO.verify_cost(10_000) == 0.0
    assert FREE_CRYPTO.digest_cost(10_000) == 0.0


def test_costs_nonnegative_and_monotone_in_size():
    model = CryptoCostModel()
    last = -1.0
    for size in (0, 10, 1000, 100_000):
        cost = model.sign_cost(size)
        assert cost >= 0
        assert cost >= last
        last = cost
