"""Cross-provider differential suite: every provider, same verdicts.

The provider seam's contract is that swapping the signature engine is
*behaviour-preserving*:

* keystore level (Hypothesis-driven) -- the same seeded keystore and
  the same message stream produce identical accept verdicts on every
  provider, and forged / tampered / truncated signatures are rejected
  by every provider, bit-for-bit the same verdict vector;
* system level -- an S=1 fig6-style run orders the identical message
  stream on every provider (with ``costs="paper"`` pinning one cost
  table, so the virtual timeline is comparable) and raises zero
  fail-signals;
* codec level -- flipping the signing/framing codec to binwire is
  simulation-neutral: same trace fingerprint, same ordered output;
* seam level -- ``CryptoSpec(provider="hmac", costs="paper")`` routes
  through the new plumbing to the exact pre-seam behaviour: the trace
  fingerprint still matches the pin captured before repro.crypto v2
  existed.

Providers differ in signature *sizes* (64-byte ed25519 values vs the
rsa integers), which legitimately shifts simulated transmission times,
so full trace fingerprints are only compared within a provider -- the
cross-provider invariant is the ordered output and the verdicts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keystore import KeyStore
from repro.crypto.provider import CryptoSpec, build_scheme, provider_available
from repro.crypto.signing import DoubleSigned, Signature
from repro.experiments.runner import build_ordering_group
from repro.experiments.spec import ScenarioSpec, ShardSpec
from repro.perf import clear_caches
from repro.shard.group import build_sharded_group
from repro.sim.scheduler import Simulator
from repro.workloads.ordering import OrderingWorkload, ShardedOrderingWorkload

PROVIDERS = ["hmac", "rsa"] + (
    ["ed25519"] if provider_available("ed25519") else []
)


# ----------------------------------------------------------------------
# keystore-level differential (Hypothesis)
# ----------------------------------------------------------------------
PAYLOADS = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=16),
    st.binary(max_size=16),
    st.tuples(st.text(max_size=8), st.integers(min_value=0, max_value=999)),
    st.dictionaries(st.text(max_size=6), st.integers(), max_size=3),
)


def _rigs(seed: int):
    """One identically-seeded keystore + signer pair per provider."""
    rigs = []
    for provider in PROVIDERS:
        store = KeyStore(build_scheme(provider))
        first = store.new_signer("m0", random.Random(seed))
        second = store.new_signer("m1", random.Random(seed + 1))
        rigs.append((provider, store, first, second))
    return rigs


def _truncate(value):
    """Drop trailing signature material, whatever the value type."""
    if isinstance(value, bytes):
        return value[: max(0, len(value) - 1)]
    if isinstance(value, int):
        return value >> 8
    return value


@given(
    payloads=st.lists(PAYLOADS, min_size=1, max_size=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_genuine_stream_accepted_by_every_provider(payloads, seed):
    verdicts = {}
    for provider, store, first, second in _rigs(seed):
        stream = []
        for payload in payloads:
            message = second.countersign(first.sign_payload(payload))
            stream.append(
                (store.check_signed(first.sign_payload(payload)),
                 store.check_double(message))
            )
        verdicts[provider] = stream
    reference = verdicts[PROVIDERS[0]]
    assert all(v == reference for v in verdicts.values())
    assert all(single and double for single, double in reference)


@given(
    payload=PAYLOADS,
    seed=st.integers(min_value=0, max_value=2**16),
    forged_bytes=st.binary(min_size=4, max_size=64),
)
@settings(max_examples=25, deadline=None)
def test_forgeries_rejected_by_every_provider(payload, seed, forged_bytes):
    for provider, store, first, second in _rigs(seed):
        message = second.countersign(first.sign_payload(payload))
        assert store.check_double(message), provider

        forged = DoubleSigned(
            payload=message.payload,
            first=message.first,
            second=Signature(signer="m1", value=forged_bytes),
        )
        assert not store.check_double(forged), provider

        truncated = DoubleSigned(
            payload=message.payload,
            first=Signature(signer="m0", value=_truncate(message.first.value)),
            second=message.second,
        )
        assert not store.check_double(truncated), provider

        # Same bytes, wrong claimed signer: verification runs against
        # m1's public material and must fail on every provider.
        misattributed = DoubleSigned(
            payload=message.payload,
            first=Signature(signer="m1", value=message.first.value),
            second=message.second,
        )
        assert not store.check_double(misattributed), provider


@given(
    payload=st.text(min_size=1, max_size=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_tampered_payload_rejected_by_every_provider(payload, seed):
    for provider, store, first, second in _rigs(seed):
        message = second.countersign(first.sign_payload(payload))
        tampered = DoubleSigned(
            payload=payload + "!",
            first=message.first,
            second=message.second,
        )
        assert not store.check_double(tampered), provider


# ----------------------------------------------------------------------
# system-level differential: S=1 fig6-style runs
# ----------------------------------------------------------------------
FIG6_SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=3,
    messages_per_member=4,
    interval=40.0,
    message_size=3,
    seed=7,
    settle_ms=500.0,
)
S1_SPEC = FIG6_SPEC.replace(shard=ShardSpec(shards=1))

#: The fig6-style trace fingerprint captured before repro.transport and
#: repro.crypto v2 existed (see tests/transport/test_sim_equivalence.py).
#: CryptoSpec(provider="hmac", costs="paper") must route through the new
#: seam to byte-identical behaviour.
PRE_SEAM_FIG6_PIN = (
    "4efb5369e033f6badc6040c8bb29abd0496ceb46d5c62b2be764aba9b7c93ec5"
)


def _ordered_output(group, member_ids):
    return {
        member: [
            (message.value["s"], message.value["r"], message.value.get("k"))
            for message in group.deliveries(member)
        ]
        for member in member_ids
    }


def _run(spec: ScenarioSpec):
    """Mirror the runner's sim-path construction, trace stored."""
    sim = Simulator(seed=spec.seed)
    if spec.shard is not None:
        group = build_sharded_group(sim, spec)
        workload = ShardedOrderingWorkload(
            sim,
            group,
            messages_per_member=spec.messages_per_member,
            interval=spec.interval,
            message_size=spec.message_size,
            keyspace=spec.shard.keyspace,
            cross_shard_ratio=spec.shard.cross_shard_ratio,
        )
    else:
        group = build_ordering_group(sim, spec)
        workload = OrderingWorkload(
            sim,
            group,
            messages_per_member=spec.messages_per_member,
            interval=spec.interval,
            message_size=spec.message_size,
        )
    workload.run(settle_ms=spec.settle_ms)
    clear_caches()
    fail_signals = [r for r in sim.trace.records if r.event == "fail-signal"]
    return (
        sim.trace.fingerprint(),
        _ordered_output(group, group.member_ids),
        len(fail_signals),
    )


def _spec_for(provider: str, codec: str = "canonical", s1: bool = False):
    base = S1_SPEC if s1 else FIG6_SPEC
    return base.replace(
        crypto=CryptoSpec(provider=provider, codec=codec, costs="paper")
    )


@pytest.mark.parametrize("s1", [False, True], ids=["plain", "s1"])
def test_cross_provider_runs_order_identically(s1):
    outputs = {}
    for provider in PROVIDERS:
        fingerprint, ordered, fail_signals = _run(_spec_for(provider, s1=s1))
        assert fail_signals == 0, provider
        total = sum(len(stream) for stream in ordered.values())
        assert total == FIG6_SPEC.n_members**2 * FIG6_SPEC.messages_per_member
        outputs[provider] = ordered
    reference = outputs[PROVIDERS[0]]
    for provider, ordered in outputs.items():
        assert ordered == reference, provider


@pytest.mark.parametrize("provider", PROVIDERS)
def test_same_seed_is_deterministic_per_provider(provider):
    assert _run(_spec_for(provider)) == _run(_spec_for(provider))


@pytest.mark.parametrize("provider", ["hmac"] + (
    ["ed25519"] if provider_available("ed25519") else []
))
def test_binwire_codec_is_simulation_neutral(provider):
    canonical = _run(_spec_for(provider, codec="canonical", s1=True))
    binwire = _run(_spec_for(provider, codec="binwire", s1=True))
    assert canonical == binwire


def test_hmac_paper_costs_match_the_pre_seam_pin():
    fingerprint, __, fail_signals = _run(_spec_for("hmac"))
    assert fingerprint == PRE_SEAM_FIG6_PIN
    assert fail_signals == 0
