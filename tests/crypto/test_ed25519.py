"""The ed25519 provider: scheme unit tests, registry gating, and the
live negative controls.

The last section is the oracle half of the provider contract: swapping
the signature engine must leave the fail-signal contract intact.  A
byzantine run under the ed25519 provider still converts forgery and
equivocation into fail-signals (no-forgery / completeness), and a clean
ed25519 run still raises zero signals (fail-signal accuracy) -- the
same negative controls ``tests/invariants`` pins for the reference
provider, re-run against the live C-backed scheme.
"""

import dataclasses
import random

import pytest

from repro.crypto import provider as provider_module
from repro.crypto.ed25519 import (
    HAVE_ED25519,
    KEY_BYTES,
    SIGNATURE_BYTES,
    Ed25519Scheme,
    Ed25519Unavailable,
    probe,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.provider import (
    CryptoSpec,
    ProviderUnavailable,
    build_scheme,
    provider_available,
    provider_names,
)
from repro.crypto.costmodel import PROVIDER_COSTS, CryptoCostModel
from repro.experiments import FaultEvent, ScenarioSpec, audit_scenario

needs_ed25519 = pytest.mark.skipif(
    not HAVE_ED25519, reason="needs the fastcrypto extra (cryptography)"
)


# ----------------------------------------------------------------------
# scheme unit tests
# ----------------------------------------------------------------------
@needs_ed25519
def test_probe_and_registry_agree():
    assert probe() is True
    assert provider_available("ed25519")
    assert "ed25519" in provider_names()
    assert isinstance(build_scheme("ed25519"), Ed25519Scheme)


@needs_ed25519
def test_generate_is_deterministic_and_raw_bytes():
    scheme = Ed25519Scheme()
    first = scheme.generate(random.Random(42))
    again = scheme.generate(random.Random(42))
    other = scheme.generate(random.Random(43))
    assert first == again
    assert first != other
    private, public = first
    assert isinstance(private, bytes) and len(private) == KEY_BYTES
    assert isinstance(public, bytes) and len(public) == KEY_BYTES


@needs_ed25519
def test_sign_verify_round_trip():
    scheme = Ed25519Scheme()
    private, public = scheme.generate(random.Random(1))
    value = scheme.sign(private, b"the message")
    assert isinstance(value, bytes) and len(value) == SIGNATURE_BYTES
    assert scheme.verify(public, b"the message", value)
    assert not scheme.verify(public, b"the messagf", value)
    assert not scheme.verify(public, b"the message", value[:-1])
    assert not scheme.verify(public, b"the message", b"\x00" * SIGNATURE_BYTES)


@needs_ed25519
def test_verify_rejects_malformed_material_without_raising():
    scheme = Ed25519Scheme()
    private, public = scheme.generate(random.Random(1))
    value = scheme.sign(private, b"m")
    assert not scheme.verify(public, b"m", 12345)  # not bytes
    assert not scheme.verify(public, b"m", None)
    assert not scheme.verify(b"short", b"m", value)  # bad public length
    assert not scheme.verify(12345, b"m", value)  # not even bytes
    __, other_public = scheme.generate(random.Random(2))
    assert not scheme.verify(other_public, b"m", value)


@needs_ed25519
def test_verify_many_is_all_or_nothing():
    scheme = Ed25519Scheme()
    private_a, public_a = scheme.generate(random.Random(1))
    private_b, public_b = scheme.generate(random.Random(2))
    good = (
        (public_a, b"one", scheme.sign(private_a, b"one")),
        (public_b, b"two", scheme.sign(private_b, b"two")),
    )
    assert scheme.verify_many(good)
    bad = (good[0], (public_b, b"two", scheme.sign(private_a, b"two")))
    assert not scheme.verify_many(bad)
    assert scheme.verify_many(())


@needs_ed25519
def test_verify_many_seeds_the_memo():
    scheme = Ed25519Scheme()
    private, public = scheme.generate(random.Random(1))
    items = tuple(
        (public, b"msg-%d" % i, scheme.sign(private, b"msg-%d" % i))
        for i in range(4)
    )
    assert scheme.verify_many(items)
    # every triple now hits the per-scheme verification memo
    for public_key, data, value in items:
        assert scheme.verify_cached(public_key, data, value)


@needs_ed25519
def test_keystore_end_to_end_with_binwire():
    store = KeyStore(Ed25519Scheme(), codec="binwire")
    first = store.new_signer("m0", random.Random(7))
    second = store.new_signer("m1", random.Random(8))
    message = second.countersign(first.sign_payload({"op": "write", "seq": 3}))
    assert store.check_double(message)
    forged = dataclasses.replace(
        message,
        second=dataclasses.replace(message.second, value=b"\x01" * 64),
    )
    assert not store.check_double(forged)


# ----------------------------------------------------------------------
# registry gating and fallback
# ----------------------------------------------------------------------
def _unavailable_ed25519(monkeypatch):
    row = provider_module._PROVIDERS["ed25519"]
    monkeypatch.setitem(
        provider_module._PROVIDERS,
        "ed25519",
        dataclasses.replace(row, available=lambda: False),
    )


def test_unavailable_provider_raises_with_extra_hint(monkeypatch):
    _unavailable_ed25519(monkeypatch)
    assert not provider_available("ed25519")
    with pytest.raises(ProviderUnavailable, match="fastcrypto"):
        build_scheme("ed25519")


def test_spec_fallback_degrades_to_default_provider(monkeypatch):
    _unavailable_ed25519(monkeypatch)
    spec = CryptoSpec(provider="ed25519", codec="binwire")
    assert spec.resolved_provider() == "hmac"
    # the fallback's cost table, not the missing provider's: simulated
    # time stays honest about what actually ran
    assert spec.cost_model() == PROVIDER_COSTS["hmac"]
    strict = CryptoSpec(provider="ed25519", fallback=False)
    with pytest.raises(ProviderUnavailable, match="forbids fallback"):
        strict.resolved_provider()


def test_scheme_construction_raises_when_backend_missing(monkeypatch):
    monkeypatch.setattr("repro.crypto.ed25519.HAVE_ED25519", False)
    with pytest.raises(Ed25519Unavailable, match="fastcrypto"):
        Ed25519Scheme()


@needs_ed25519
def test_spec_resolves_to_ed25519_when_available():
    spec = CryptoSpec(provider="ed25519", codec="binwire")
    assert spec.resolved_provider() == "ed25519"
    assert isinstance(spec.scheme(), Ed25519Scheme)
    assert spec.cost_model() == PROVIDER_COSTS["ed25519"]
    assert CryptoSpec(provider="ed25519", costs="paper").cost_model() == (
        CryptoCostModel()
    )


# ----------------------------------------------------------------------
# live negative controls: the oracles under the ed25519 provider
# ----------------------------------------------------------------------
BASE = ScenarioSpec(
    system="fs-newtop",
    n_members=3,
    messages_per_member=8,
    interval=40.0,
    collapsed=False,
    settle_ms=8_000.0,
    crypto=CryptoSpec(provider="ed25519", codec="binwire", fallback=False),
)


@needs_ed25519
@pytest.mark.parametrize("flag", ["forge_signature", "equivocate"])
def test_forgery_still_detected_under_ed25519(flag):
    spec = BASE.replace(
        faults=(FaultEvent(at=150.0, kind="byzantine", member=0, flags=(flag,)),)
    )
    run = audit_scenario(spec, scenario=f"ed25519/{flag}")
    # the no-forgery / completeness oracles fire against real ed25519
    # signatures, not just the pure-python reference
    assert run.report.ok, run.report.render()
    assert run.result.metrics["fail_signals"] >= 1.0
    assert run.report.stats["fail_signals"] >= 1.0


@needs_ed25519
def test_clean_ed25519_run_raises_no_false_signals():
    run = audit_scenario(BASE, scenario="ed25519/clean")
    assert run.report.ok, run.report.render()
    assert run.result.metrics["fail_signals"] == 0.0
    assert run.report.stats["fail_signals"] == 0.0
