"""The compact binwire codec: round-trips, strictness, golden bytes.

Three layers of lockdown:

* property tests -- ``binwire_decode(binwire_encode(v)) == v`` over the
  full generic value domain, plus determinism (dict insertion order
  never changes the bytes) and the canonical/binwire value-domain
  alignment;
* the closed registry -- every registered wire type round-trips
  field-for-field (OutputBatch, BatchSingle and the checkpoint
  certificate payloads included), unregistered dataclasses are
  rejected, and the strict decoder refuses bad versions, unknown tags,
  unknown type ids, truncations and trailing bytes;
* a golden-bytes fixture -- the exact encoding of a representative
  double-signed output is pinned, so any byte-level format change
  (however accidental) fails loudly and forces a deliberate
  ``BINWIRE_VERSION`` bump.
"""

import dataclasses
import random
import typing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.corba.orb import ObjectRef
from repro.core.messages import BatchSingle, FsOutput, OutputBatch
from repro.crypto.binwire import (
    BINWIRE_VERSION,
    BinwireError,
    binwire_decode,
    binwire_encode,
    binwire_equivalent,
    type_id_of,
)
from repro.crypto.canonical import canonical_encode
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import DoubleSigned, HmacScheme, Signature, Signed
from repro.transport.wire import registered_wire_types, wire_codec


# ----------------------------------------------------------------------
# generic value domain
# ----------------------------------------------------------------------
SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False),
    st.text(max_size=24),
    st.binary(max_size=24),
)

VALUES = st.recursive(
    SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@given(value=VALUES)
@settings(max_examples=120, deadline=None)
def test_round_trip_generic_values(value):
    assert binwire_decode(binwire_encode(value)) == value


@given(value=VALUES)
@settings(max_examples=60, deadline=None)
def test_encoding_is_pure(value):
    first = binwire_encode(value)
    perf.clear_caches()
    assert binwire_encode(value) == first


@given(mapping=st.dictionaries(st.text(max_size=8), SCALARS, max_size=6))
@settings(max_examples=60, deadline=None)
def test_dict_insertion_order_is_canonicalised(mapping):
    reversed_insertion = dict(reversed(list(mapping.items())))
    assert binwire_encode(mapping) == binwire_encode(reversed_insertion)


@given(value=VALUES)
@settings(max_examples=60, deadline=None)
def test_value_domain_matches_canonical(value):
    # Whatever the generic domain produces must encode under both
    # codecs: a payload signable under canonical is signable under
    # binwire, so flipping CryptoSpec.codec can never strand a message.
    assert binwire_equivalent(value)
    canonical_encode(value)  # and canonical agrees it is encodable


def test_frozenset_round_trips_deterministically():
    value = frozenset({"b", "a", "c"})
    assert binwire_decode(binwire_encode(value)) == value
    assert binwire_encode(frozenset({"c", "a", "b"})) == binwire_encode(value)


# ----------------------------------------------------------------------
# the closed registry: every wire type round-trips
# ----------------------------------------------------------------------
def _placeholder(tp):
    origin = typing.get_origin(tp)
    if tp is str:
        return "x"
    if tp is int:
        return 1
    if tp is float:
        return 1.0
    if tp is bool:
        return True
    if tp is bytes:
        return b"x"
    if origin is tuple:
        return ()
    if tp is dict or origin is dict:
        return {}
    if tp is list or origin is list:
        return []
    return None


def _instance_of(cls):
    hints = typing.get_type_hints(cls)
    values = {
        field.name: _placeholder(hints.get(field.name))
        for field in dataclasses.fields(cls)
        if field.init
    }
    return cls(**values)


@pytest.mark.parametrize(
    "qualname", sorted(registered_wire_types()), ids=sorted(registered_wire_types())
)
def test_every_registered_type_round_trips(qualname):
    cls = registered_wire_types()[qualname]
    original = _instance_of(cls)
    restored = binwire_decode(binwire_encode(original))
    assert type(restored) is cls
    for field in dataclasses.fields(cls):
        assert getattr(restored, field.name) == getattr(original, field.name)


def _signed_output(seq: int = 3) -> Signed:
    store = KeyStore(HmacScheme())
    signer = store.new_signer("m0", random.Random(1))
    return signer.sign_payload(
        FsOutput(
            fs_id="t.fs",
            input_seq=seq,
            output_idx=0,
            target=ObjectRef(node="n", key="t.obj"),
            method="multicast",
            args=("g", "symmetric_total", f"m-{seq}"),
        )
    )


def test_output_batch_round_trips():
    batch = OutputBatch(
        fs_id="t.fs", batch_no=2, outputs=(_signed_output(1), _signed_output(2))
    )
    restored = binwire_decode(binwire_encode(batch))
    assert restored == batch
    single = BatchSingle(signed=_signed_output(9))
    assert binwire_decode(binwire_encode(single)) == single


def test_checkpoint_certificate_payload_round_trips():
    # The app layer's signed checkpoint certificates are (dict payload,
    # Signature) pairs -- the mixed dict/tuple/bytes shape that
    # exercises every container tag at once.
    store = KeyStore(HmacScheme())
    signer = store.new_signer("m1", random.Random(2))
    cert = signer.sign_payload(
        {
            "kind": "checkpoint",
            "seq": 128,
            "state_digest": b"\xab" * 16,
            "members": ("m0", "m1", "m2"),
        }
    )
    restored = binwire_decode(binwire_encode(cert))
    assert restored == cert
    assert store.check_signed(restored)


def test_unregistered_dataclass_is_rejected():
    @dataclasses.dataclass(frozen=True)
    class NotOnTheWire:
        x: int = 1

    with pytest.raises(BinwireError, match="not a registered wire type"):
        binwire_encode(NotOnTheWire())


# ----------------------------------------------------------------------
# strict decoder
# ----------------------------------------------------------------------
def test_rejects_empty_and_bad_version():
    with pytest.raises(BinwireError, match="empty"):
        binwire_decode(b"")
    good = binwire_encode(7)
    with pytest.raises(BinwireError, match="bad binwire version"):
        binwire_decode(bytes([BINWIRE_VERSION + 1]) + good[1:])
    with pytest.raises(BinwireError, match="bad binwire version"):
        binwire_decode(b"\x00" + good[1:])


def test_rejects_trailing_bytes():
    with pytest.raises(BinwireError, match="trailing"):
        binwire_decode(binwire_encode(7) + b"\x00")
    with pytest.raises(BinwireError, match="trailing"):
        binwire_decode(binwire_encode([1, 2]) + binwire_encode(3)[1:])


def test_rejects_unknown_tag():
    with pytest.raises(BinwireError, match="unknown binwire tag"):
        binwire_decode(bytes([BINWIRE_VERSION, 0x7F]))


def test_rejects_unknown_type_id():
    bogus = type_id_of("no.such.Type")
    assert bogus not in {type_id_of(n) for n in registered_wire_types()}
    with pytest.raises(BinwireError, match="unknown binwire type id"):
        binwire_decode(bytes([BINWIRE_VERSION, 0x0A]) + bogus)


@pytest.mark.parametrize(
    "value", [7, 1.5, "hello", b"bytes", [1, "two"], ("a", 3), {"k": 1}]
)
def test_rejects_truncation_everywhere(value):
    # Every strict prefix of a valid encoding must raise, never return.
    data = binwire_encode(value)
    for cut in range(1, len(data)):
        with pytest.raises(BinwireError):
            binwire_decode(data[:cut])


def test_signed_message_truncation_rejected():
    data = binwire_encode(_signed_output())
    for cut in range(1, len(data), 7):
        with pytest.raises(BinwireError):
            binwire_decode(data[:cut])


# ----------------------------------------------------------------------
# framing seam + compactness
# ----------------------------------------------------------------------
def test_wire_codec_seam():
    encode, decode = wire_codec("binwire")
    message = _signed_output()
    assert decode(encode(message)) == message
    with pytest.raises(ValueError, match="unknown wire codec"):
        wire_codec("msgpack")


def test_binwire_is_materially_smaller_than_canonical():
    message = DoubleSigned(
        payload=_signed_output().payload,
        first=Signature(signer="m0", value=b"\x11" * 20),
        second=Signature(signer="m1", value=b"\x22" * 20),
    )
    compact = len(binwire_encode(message))
    verbose = len(canonical_encode(message))
    assert compact < verbose * 0.6


# ----------------------------------------------------------------------
# golden bytes: the committed format
# ----------------------------------------------------------------------
GOLDEN_MESSAGE = DoubleSigned(
    payload=FsOutput(
        fs_id="golden.fs",
        input_seq=7,
        output_idx=0,
        target=ObjectRef(node="node-1", key="golden.obj"),
        method="multicast",
        args=("group", "symmetric_total", b"\x00\x01payload"),
    ),
    first=Signature(signer="m0", value=b"\x11" * 8),
    second=Signature(signer="m1", value=b"\x22" * 8),
)

GOLDEN_BYTES = bytes.fromhex(
    "010a9dcc29310a9273cd770509676f6c64656e2e6673030e03000a771d5173"
    "05066e6f64652d31050a676f6c64656e2e6f626a05096d756c746963617374"
    "0803050567726f7570050f73796d6d65747269635f746f74616c0609000170"
    "61796c6f61640a8c09001c05026d30060811111111111111110a8c09001c05"
    "026d3106082222222222222222"
)


def test_golden_bytes_are_pinned():
    # A byte-level change to the format must be deliberate: it shifts
    # every signature and frame on the wire, so it requires both a
    # BINWIRE_VERSION bump and a refresh of this fixture.
    assert binwire_encode(GOLDEN_MESSAGE) == GOLDEN_BYTES
    assert binwire_decode(GOLDEN_BYTES) == GOLDEN_MESSAGE
    assert GOLDEN_BYTES[0] == BINWIRE_VERSION == 1
