"""Tests for prime generation and Miller-Rabin."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import generate_prime, is_probable_prime

FIRST_PRIMES = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
}


def test_small_numbers_classified_exactly():
    for n in range(100):
        assert is_probable_prime(n) == (n in FIRST_PRIMES), n


def test_known_large_prime():
    # 2^127 - 1 is a Mersenne prime.
    assert is_probable_prime(2**127 - 1)


def test_known_large_composite():
    assert not is_probable_prime((2**127 - 1) * 3)


def test_carmichael_numbers_rejected():
    # Carmichael numbers fool Fermat tests but not Miller-Rabin.
    for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
        assert not is_probable_prime(n), n


def test_generate_prime_has_requested_bits():
    rng = random.Random(7)
    for bits in (16, 32, 64, 128):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_deterministic_per_seed():
    assert generate_prime(64, random.Random(5)) == generate_prime(64, random.Random(5))
    assert generate_prime(64, random.Random(5)) != generate_prime(64, random.Random(6))


def test_generate_prime_rejects_tiny_bits():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))


@given(st.integers(min_value=2, max_value=5000))
@settings(max_examples=200)
def test_agrees_with_trial_division(n):
    by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
    assert is_probable_prime(n) == by_trial


@given(st.integers(min_value=2, max_value=300), st.integers(min_value=2, max_value=300))
@settings(max_examples=100)
def test_products_are_composite(a, b):
    assert not is_probable_prime(a * b)
