"""Full-stack detection coverage: every FaultPlan flag, individually,
under the invariant oracles -- plus the negative controls (fault-free
runs raise no false signals; broken or undeclared detection fails the
audit)."""

import pytest

from repro.core.fso import Fso, FsoRole
from repro.experiments import FaultEvent, ScenarioSpec, audit_scenario
from repro.experiments.runner import build_ordering_group
from repro.invariants import InvariantMonitor, topology_of
from repro.sim import Simulator
from repro.workloads.ordering import OrderingWorkload

#: Small but busy: 3 members streaming every 40ms; faults strike at
#: t=150ms with plenty of traffic still to come.
BASE = ScenarioSpec(
    system="fs-newtop",
    n_members=3,
    messages_per_member=8,
    interval=40.0,
    collapsed=False,
    settle_ms=8_000.0,
)

ALL_FLAGS = (
    "corrupt_outputs",
    "drop_singles",
    "mute_lan",
    "scramble_order",
    "forge_signature",
    "equivocate",
    "replay_singles",
)


def _audit_with_flag(flag):
    spec = BASE.replace(
        faults=(FaultEvent(at=150.0, kind="byzantine", member=0, flags=(flag,)),)
    )
    return audit_scenario(spec, scenario=f"flag/{flag}")


@pytest.mark.parametrize("flag", ALL_FLAGS)
def test_each_flag_is_detected_and_audited_clean(flag):
    run = _audit_with_flag(flag)
    assert run.report.ok, run.report.render()
    # the misbehaviour was really converted into a fail-signal
    assert run.result.metrics["fail_signals"] >= 1.0
    # ...and the oracles saw both the activation and the detection
    assert run.report.stats["pairs_faulted"] == 1.0
    assert run.report.stats["fail_signals"] >= 1.0


def test_fault_free_run_raises_no_false_signals():
    run = audit_scenario(BASE, scenario="flag/clean")
    assert run.report.ok, run.report.render()
    assert run.result.metrics["fail_signals"] == 0.0
    assert run.report.stats["fail_signals"] == 0.0


def test_same_seed_same_report():
    first = _audit_with_flag("equivocate").report.to_dict()
    second = _audit_with_flag("equivocate").report.to_dict()
    assert first == second


def test_broken_detection_fails_the_audit(monkeypatch):
    """If fail-signalling silently stops working, the completeness
    oracle -- not a green run -- is what says so."""
    monkeypatch.setattr(Fso, "_start_signaling", lambda self, reason: None)
    run = _audit_with_flag("corrupt_outputs")
    assert not run.report.ok
    messages = " ".join(v.message for v in run.report.violations)
    assert "no fail-signal followed" in messages


def test_undeclared_misbehaviour_reads_as_false_signal():
    """A fault injected behind the oracles' backs (no activation trace)
    makes the resulting fail-signal unaccountable -- audit fails."""
    spec = BASE
    sim = Simulator(seed=spec.seed)
    sim.trace.store = False
    group = build_ordering_group(sim, spec, byzantine_members=(0,))
    monitor = InvariantMonitor(sim, topology_of(group), scenario="undeclared")
    workload = OrderingWorkload(
        sim,
        group,
        messages_per_member=spec.messages_per_member,
        interval=spec.interval,
        message_size=spec.message_size,
        service=spec.service,
        write_ratio=spec.write_ratio,
    )

    def sabotage():
        fso = group.byzantine_fso(0, FsoRole.LEADER)
        fso.faults.corrupt_outputs = True  # no go_byzantine, no trace

    sim.schedule(150.0, sabotage)
    workload.run(settle_ms=spec.settle_ms)
    report = monitor.finish()
    assert not report.ok
    messages = " ".join(v.message for v in report.violations)
    assert "false fail-signal" in messages
