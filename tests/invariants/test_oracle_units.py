"""Unit tests of the invariant oracles over synthetic trace streams.

Each test hand-feeds :class:`TraceRecord`s through an
:class:`InvariantMonitor` wired to a toy two-pair topology -- no
simulation, so every oracle's verdict logic is exercised directly,
including the violation paths a healthy run never reaches.
"""

from repro.invariants import (
    AuditConfig,
    InvariantMonitor,
    PairTopology,
    Topology,
)
from repro.sim import Simulator
from repro.sim.trace import TraceRecord

TOPOLOGY = Topology(
    system="fs-newtop",
    members=("member-0", "member-1"),
    pairs=(
        PairTopology("member-0.gc", "member-0", "member-0", "member-0-b"),
        PairTopology("member-1.gc", "member-1", "member-1", "member-1-b"),
    ),
)


class Harness:
    def __init__(self, **config):
        self.sim = Simulator(seed=7)
        self.monitor = InvariantMonitor(
            self.sim, TOPOLOGY, config=AuditConfig(**config)
        )

    def feed(self, time, category, source, event, **details):
        self.monitor._observe(
            TraceRecord(
                time=time,
                category=category,
                source=source,
                event=event,
                details=tuple(sorted(details.items())),
            )
        )

    def verdict(self, oracle):
        report = self.monitor.finish()
        return next(v for v in report.verdicts if v.oracle == oracle)

    # convenience event builders -----------------------------------------
    def send(self, t, member, key):
        self.feed(t, "app", f"{member}.inv", "send", key=key, service="symmetric_total")

    def deliver(self, t, member, key, sender="member-0", service="symmetric_total"):
        self.feed(
            t, "app", f"{member}.inv", "deliver", key=key, sender=sender, service=service
        )

    def activate(self, t, fs, role="leader", flags=("corrupt_outputs",)):
        self.feed(t, "adversary", f"{fs}/{role}", "activate", flags=tuple(flags))

    def manifest(self, t, fs, event="corrupted-output"):
        self.feed(t, "fault", f"{fs}/leader", event)

    def signal(self, t, fs, reason="output-mismatch"):
        self.feed(t, "fso", f"{fs}/leader", "fail-signal", reason=reason)


# ----------------------------------------------------------------------
# total order
# ----------------------------------------------------------------------
def test_total_order_accepts_set_differences():
    h = Harness()
    for t, key in ((1, "a"), (2, "b"), (3, "c")):
        h.deliver(t, "member-0", key)
    for t, key in ((1, "a"), (3, "c")):  # b never arrived here: fine
        h.deliver(t, "member-1", key)
    assert h.verdict("total-order").ok


def test_total_order_flags_inversions():
    h = Harness()
    h.deliver(1, "member-0", "a")
    h.deliver(2, "member-0", "b")
    h.deliver(1, "member-1", "b")
    h.deliver(2, "member-1", "a")
    verdict = h.verdict("total-order")
    assert not verdict.ok
    assert "different orders" in verdict.violations[0].message


def test_total_order_flags_duplicates():
    h = Harness()
    h.deliver(1, "member-0", "a")
    h.deliver(2, "member-0", "a")
    assert not h.verdict("total-order").ok


def test_total_order_ignores_non_total_services():
    h = Harness()
    h.deliver(1, "member-0", "a", service="reliable")
    h.deliver(1, "member-1", "b", service="reliable")
    verdict = h.verdict("total-order")
    assert verdict.ok and verdict.checked == 0


def test_total_order_respects_partitions():
    h = Harness()
    # halves diverge after a partition -- allowed across sides
    h.feed(0, "adversary", "fault-plan", "faultplan", kind="partition", groups=[[0], [1]])
    h.deliver(1, "member-0", "a")
    h.deliver(2, "member-0", "b")
    h.deliver(1, "member-1", "b")
    h.deliver(2, "member-1", "a")
    assert h.verdict("total-order").ok


# ----------------------------------------------------------------------
# validity
# ----------------------------------------------------------------------
def test_validity_needs_a_matching_send():
    h = Harness()
    h.send(1, "member-0", "real")
    h.deliver(2, "member-1", "real")
    h.deliver(3, "member-1", "fabricated")
    verdict = h.verdict("validity")
    assert not verdict.ok
    assert len(verdict.violations) == 1
    assert "nobody sent" in verdict.violations[0].message


# ----------------------------------------------------------------------
# fail-signal accuracy / completeness
# ----------------------------------------------------------------------
def test_unexpected_signal_is_a_false_signal():
    h = Harness()
    h.signal(100, "member-1.gc")
    verdict = h.verdict("fail-signal")
    assert not verdict.ok
    assert "false fail-signal" in verdict.violations[0].message


def test_signal_after_activation_is_accurate():
    h = Harness()
    h.activate(50, "member-1.gc")
    h.manifest(60, "member-1.gc")
    h.signal(100, "member-1.gc")
    assert h.verdict("fail-signal").ok


def test_signal_allowed_after_node_crash():
    h = Harness()
    h.feed(40, "adversary", "fault-plan", "faultplan", kind="crash", member=1)
    h.signal(100, "member-1.gc")
    assert h.verdict("fail-signal").ok


def test_manifested_misbehaviour_requires_a_signal():
    h = Harness()
    h.activate(50, "member-0.gc")
    h.manifest(60, "member-0.gc")
    verdict = h.verdict("fail-signal")
    assert not verdict.ok
    assert "no fail-signal followed" in verdict.violations[0].message


def test_unmanifested_misbehaviour_requires_nothing():
    h = Harness()
    h.activate(50, "member-0.gc")  # never struck: no traffic in window
    assert h.verdict("fail-signal").ok


def test_detection_deadline_enforced():
    h = Harness(detection_deadline_ms=100.0)
    h.activate(50, "member-0.gc")
    h.manifest(60, "member-0.gc")
    h.signal(300, "member-0.gc")
    verdict = h.verdict("fail-signal")
    assert not verdict.ok
    assert "deadline" in verdict.violations[0].message


# ----------------------------------------------------------------------
# double-sign soundness
# ----------------------------------------------------------------------
def test_forwarded_value_must_be_vouched_by_correct_side():
    h = Harness()
    h.activate(10, "member-0.gc", role="leader")
    h.feed(20, "fso", "member-0.gc/leader", "single", corr=[0, 0], digest="evil")
    h.feed(21, "fso", "member-0.gc/follower", "single", corr=[0, 0], digest="good")
    h.feed(30, "inbox", "inbox@member-1", "output-forwarded", fs="member-0.gc", digest="good")
    h.feed(31, "inbox", "inbox@member-1", "output-forwarded", fs="member-0.gc", digest="evil")
    verdict = h.verdict("double-sign-soundness")
    assert not verdict.ok
    assert len(verdict.violations) == 1  # "good" passed, "evil" flagged
    assert "never vouched" in verdict.violations[0].message


# ----------------------------------------------------------------------
# equivocation evidence
# ----------------------------------------------------------------------
def test_equivocation_evidence_convicts_declared_equivocator():
    h = Harness()
    h.activate(10, "member-0.gc", flags=("equivocate",))
    h.manifest(20, "member-0.gc", event="equivocated-single")
    h.feed(21, "fso", "member-0.gc/follower", "single-accepted",
           corr=[5, 0], digest="x", signer="member-0.gc#A")
    h.feed(22, "fso", "member-0.gc/follower", "single-accepted",
           corr=[5, 0], digest="y", signer="member-0.gc#A")
    assert h.verdict("equivocation-evidence").ok


def test_evidence_against_correct_signer_is_a_violation():
    h = Harness()
    h.feed(21, "fso", "member-1.gc/follower", "single-accepted",
           corr=[5, 0], digest="x", signer="member-1.gc#A")
    h.feed(22, "fso", "member-1.gc/follower", "single-accepted",
           corr=[5, 0], digest="y", signer="member-1.gc#A")
    verdict = h.verdict("equivocation-evidence")
    assert not verdict.ok
    assert "fabricated" in verdict.violations[0].message


def test_conflicting_sides_are_not_equivocation():
    # leader corrupt, follower honest: different signers, no conviction
    h = Harness()
    h.activate(10, "member-0.gc")
    h.feed(21, "fso", "member-0.gc/follower", "single-accepted",
           corr=[5, 0], digest="x", signer="member-0.gc#A")
    h.feed(22, "fso", "member-0.gc/leader", "single-accepted",
           corr=[5, 0], digest="y", signer="member-0.gc#B")
    assert h.verdict("equivocation-evidence").ok


def test_manifested_equivocation_needs_evidence_or_signal():
    h = Harness()
    h.activate(10, "member-0.gc", flags=("equivocate",))
    h.manifest(20, "member-0.gc", event="equivocated-single")
    verdict = h.verdict("equivocation-evidence")
    assert not verdict.ok
    assert "neither" in verdict.violations[0].message


# ----------------------------------------------------------------------
# no-forgery
# ----------------------------------------------------------------------
def test_forgery_must_be_rejected():
    h = Harness()
    h.activate(10, "member-0.gc", flags=("forge_signature",))
    h.feed(20, "fault", "member-0.gc/leader", "forged-single")
    verdict = h.verdict("no-forgery")
    assert not verdict.ok
    assert "A5" in verdict.violations[0].message


def test_rejected_forgery_is_fine():
    h = Harness()
    h.activate(10, "member-0.gc", flags=("forge_signature",))
    h.feed(20, "fault", "member-0.gc/leader", "forged-single")
    h.feed(21, "fso", "member-0.gc/follower", "single-rejected", claimed="member-0.gc#A")
    h.signal(30, "member-0.gc", reason="compare-timeout")
    assert h.verdict("no-forgery").ok


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------
def test_report_shape_and_rendering():
    h = Harness()
    h.signal(100, "member-1.gc")
    report = h.monitor.finish()
    assert not report.ok
    assert report.system == "fs-newtop"
    rendered = report.render()
    assert "FAIL" in rendered and "false fail-signal" in rendered
    data = report.to_dict()
    assert data["ok"] is False
    assert any(not v["ok"] for v in data["verdicts"])


def test_violation_cap_respected():
    h = Harness(max_violations_per_oracle=3)
    for i in range(10):
        h.deliver(float(i), "member-0", f"fabricated-{i}")
    assert len(h.verdict("validity").violations) == 3
