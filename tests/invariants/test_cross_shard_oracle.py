"""The cross-shard oracle: unit checks plus full-stack negative controls.

The oracle must stay green on every healthy sharded run (and stay
vacuous on unsharded runs), and it must flag the two ways a sharded
deployment can lie about order: a coordinator equivocating on final
sequence numbers (``shard_reorder``), and a shard whose local order is
tainted by an unquarantined equivocation.
"""

from repro.adversary.spec import AdversarySpec
from repro.core.fso import Fso
from repro.experiments import ScenarioSpec, ShardSpec, audit_scenario
from repro.invariants import AuditConfig, InvariantMonitor, PairTopology, Topology
from repro.sim import Simulator
from repro.sim.trace import TraceRecord

SHARDED_SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=6,
    interval=50.0,
    seed=1,
    settle_ms=15_000.0,
    shard=ShardSpec(shards=2, cross_shard_ratio=0.25, keyspace=32),
)


def _verdict(report, oracle="cross-shard-order"):
    return next(v for v in report.verdicts if v.oracle == oracle)


# ----------------------------------------------------------------------
# full-stack behaviour
# ----------------------------------------------------------------------
def test_clean_sharded_run_passes_all_eight_oracles():
    run = audit_scenario(SHARDED_SPEC, scenario="xs/clean")
    assert run.report.ok, run.report.render()
    assert len(run.report.verdicts) == 8
    verdict = _verdict(run.report)
    assert verdict.checked > 0  # it really audited cross-shard traffic


def test_unsharded_run_keeps_the_oracle_vacuously_green():
    run = audit_scenario(
        SHARDED_SPEC.replace(shard=None), scenario="xs/unsharded"
    )
    assert run.report.ok, run.report.render()
    verdict = _verdict(run.report)
    assert verdict.checked == 0 and not verdict.violations


def test_shard_reorder_adversary_is_flagged():
    """Negative control 1: a coordinator equivocating on sequence
    numbers (injected via repro.adversary) breaks the global order."""
    spec = SHARDED_SPEC.replace(
        adversaries=(AdversarySpec(kind="shard_reorder", at=0.0),)
    )
    run = audit_scenario(spec, scenario="xs/reorder")
    assert not run.report.ok
    verdict = _verdict(run.report)
    assert verdict.violations
    messages = " ".join(v.message for v in verdict.violations)
    assert "committed at" in messages  # the sequence-agreement check fired


def test_unquarantined_shard_equivocation_is_flagged(monkeypatch):
    """Negative control 2: a shard-local equivocation (injected via
    repro.adversary) whose fail-signal never fires taints the shard."""
    monkeypatch.setattr(Fso, "_start_signaling", lambda self, reason: None)
    spec = SHARDED_SPEC.replace(
        adversaries=(AdversarySpec(kind="equivocate", at=100.0, member=0),),
        collapsed=False,
    )
    run = audit_scenario(spec, scenario="xs/equivocate")
    assert not run.report.ok
    verdict = _verdict(run.report)
    messages = " ".join(v.message for v in verdict.violations)
    assert "shard-local equivocation" in messages


def test_quarantined_shard_equivocation_passes():
    """The same attack with detection intact: the pair fail-signals,
    the shard's order is quarantined, the oracle stays green."""
    spec = SHARDED_SPEC.replace(
        adversaries=(AdversarySpec(kind="equivocate", at=100.0, member=0),),
        collapsed=False,
    )
    run = audit_scenario(spec, scenario="xs/equivocate-detected")
    assert run.report.ok, run.report.render()
    assert run.result.metrics["fail_signals"] >= 1.0


# ----------------------------------------------------------------------
# unit checks over synthetic traces
# ----------------------------------------------------------------------
TOPOLOGY = Topology(
    system="fs-newtop",
    members=("s0-member-0", "s0-member-1", "s1-member-0", "s1-member-1"),
    pairs=(
        PairTopology("s0-member-0.gc", "s0-member-0", "s0-member-0", "s0-member-0-b"),
        PairTopology("s0-member-1.gc", "s0-member-1", "s0-member-1", "s0-member-1-b"),
        PairTopology("s1-member-0.gc", "s1-member-0", "s1-member-0", "s1-member-0-b"),
        PairTopology("s1-member-1.gc", "s1-member-1", "s1-member-1", "s1-member-1-b"),
    ),
    shards=(("s0-member-0", "s0-member-1"), ("s1-member-0", "s1-member-1")),
)

ALL_MEMBERS = TOPOLOGY.members


class Harness:
    def __init__(self):
        self.sim = Simulator(seed=7)
        self.monitor = InvariantMonitor(self.sim, TOPOLOGY, config=AuditConfig())

    def feed(self, time, category, source, event, **details):
        self.monitor._observe(
            TraceRecord(
                time=time,
                category=category,
                source=source,
                event=event,
                details=tuple(sorted(details.items())),
            )
        )

    def submit(self, t, op, shards=(0, 1)):
        self.feed(t, "shard", "router", "submit", op=op, shards=list(shards))

    def commit(self, t, op, seq):
        self.feed(t, "shard", "router", "commit", op=op, seq=seq)

    def release(self, t, member, op, seq):
        shard = TOPOLOGY.shard_of_member(member)
        self.feed(t, "shard", f"{member}.agent", "release", op=op, seq=seq, shard=shard)

    def release_everywhere(self, t, op, seq):
        for member in ALL_MEMBERS:
            self.release(t, member, op, seq)

    def verdict(self):
        report = self.monitor.finish()
        return next(v for v in report.verdicts if v.oracle == "cross-shard-order")


def test_unit_clean_protocol_run_passes():
    h = Harness()
    h.submit(1.0, "x1")
    h.commit(2.0, "x1", 1)
    h.release_everywhere(3.0, "x1", 1)
    h.submit(4.0, "x2")
    h.commit(5.0, "x2", 2)
    h.release_everywhere(6.0, "x2", 2)
    verdict = h.verdict()
    assert not verdict.violations and verdict.checked > 0


def test_unit_out_of_order_release_is_flagged():
    h = Harness()
    for op, seq in (("x1", 1), ("x2", 2)):
        h.submit(1.0, op)
        h.commit(2.0, op, seq)
    for member in ALL_MEMBERS[1:]:
        h.release(3.0, member, "x1", 1)
        h.release(3.5, member, "x2", 2)
    h.release(3.0, ALL_MEMBERS[0], "x2", 2)  # inverted at one member
    h.release(3.5, ALL_MEMBERS[0], "x1", 1)
    verdict = h.verdict()
    assert any("order violated" in v.message for v in verdict.violations)


def test_unit_conflicting_sequences_are_flagged():
    h = Harness()
    h.submit(1.0, "x1")
    h.commit(2.0, "x1", 5)
    for member in TOPOLOGY.shards[0]:
        h.release(3.0, member, "x1", 5)
    for member in TOPOLOGY.shards[1]:
        h.release(3.0, member, "x1", 9)  # told a different final seq
    verdict = h.verdict()
    assert any("committed at" in v.message for v in verdict.violations)


def test_unit_release_without_commit_is_flagged():
    h = Harness()
    h.release(1.0, ALL_MEMBERS[0], "ghost", 1)
    verdict = h.verdict()
    assert any("never submitted" in v.message for v in verdict.violations)


def test_unit_partial_release_is_incomplete():
    h = Harness()
    h.submit(1.0, "x1")
    h.commit(2.0, "x1", 1)
    for member in ALL_MEMBERS[:-1]:
        h.release(3.0, member, "x1", 1)
    verdict = h.verdict()
    assert any("never released at" in v.message for v in verdict.violations)


def test_unit_double_release_is_flagged():
    h = Harness()
    h.submit(1.0, "x1")
    h.commit(2.0, "x1", 1)
    h.release_everywhere(3.0, "x1", 1)
    h.release(4.0, ALL_MEMBERS[0], "x1", 1)
    verdict = h.verdict()
    assert any("twice" in v.message for v in verdict.violations)


def test_unit_wrong_shard_release_is_flagged():
    h = Harness()
    h.submit(1.0, "x1", shards=(0,))
    # Force a commit record so only the routing check can fire.
    h.commit(2.0, "x1", 1)
    h.release(3.0, "s1-member-0", "x1", 1)
    verdict = h.verdict()
    assert any("only involves shards" in v.message for v in verdict.violations)
