"""Tests for the CORBA Any type."""

from repro.corba import CorbaAny


def test_wrap_extract_roundtrip():
    any_value = CorbaAny.wrap({"op": "bid", "amount": 42})
    assert any_value.extract() == {"op": "bid", "amount": 42}


def test_typecodes():
    assert CorbaAny.wrap(None).typecode == "tk_null"
    assert CorbaAny.wrap(True).typecode == "tk_boolean"
    assert CorbaAny.wrap(3).typecode == "tk_longlong"
    assert CorbaAny.wrap(3.5).typecode == "tk_double"
    assert CorbaAny.wrap("s").typecode == "tk_string"
    assert CorbaAny.wrap(b"b").typecode == "tk_octet_sequence"
    assert CorbaAny.wrap([1]).typecode == "tk_sequence"
    assert CorbaAny.wrap({}).typecode == "tk_struct"


def test_bool_not_confused_with_int():
    assert CorbaAny.wrap(True).extract() is True
    assert CorbaAny.wrap(1).extract() == 1


def test_wire_size_grows_with_content():
    small = CorbaAny.wrap("x")
    big = CorbaAny.wrap("x" * 1000)
    assert big.wire_size > small.wire_size + 900


def test_any_is_canonical_encodable():
    """An Any travels inside protocol messages, so it must sign/marshal."""
    from repro.crypto import canonical_encode

    a = CorbaAny.wrap([1, 2, 3])
    b = CorbaAny.wrap([1, 2, 3])
    assert canonical_encode(a) == canonical_encode(b)
