"""Tests for ORB invocation, interceptors and dispatch."""

import pytest

from repro.corba import (
    ClientInterceptor,
    Node,
    ObjectNotFound,
    ObjectRef,
    Servant,
    ServerInterceptor,
)
from repro.net import ConstantDelay, Network
from repro.sim import Simulator


class Recorder(Servant):
    def __init__(self):
        self.calls = []

    def ping(self, *args):
        self.calls.append(("ping", args))

    def add(self, a, b):
        self.calls.append(("add", (a, b)))
        return a + b


def _two_nodes(seed=0, **node_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, default_delay=ConstantDelay(1.0))
    n1 = Node(sim, "node-1", net, **node_kwargs)
    n2 = Node(sim, "node-2", net, **node_kwargs)
    return sim, net, n1, n2


def test_remote_oneway():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n2.activate("rec", servant)
    n1.orb.oneway(ref, "ping", 1, 2)
    sim.run_until_idle()
    assert servant.calls == [("ping", (1, 2))]


def test_local_oneway_no_network():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n1.activate("rec", servant)
    n1.orb.oneway(ref, "ping")
    sim.run_until_idle()
    assert servant.calls == [("ping", ())]
    assert net.stats.messages_sent == 0


def test_two_way_reply():
    sim, net, n1, n2 = _two_nodes()
    ref = n2.activate("rec", Recorder())
    results = []
    n1.orb.invoke(ref, "add", 2, 3, on_reply=results.append)
    sim.run_until_idle()
    assert results == [5]


def test_local_two_way_reply():
    sim, net, n1, n2 = _two_nodes()
    ref = n1.activate("rec", Recorder())
    results = []
    n1.orb.invoke(ref, "add", 10, 20, on_reply=results.append)
    sim.run_until_idle()
    assert results == [30]
    assert net.stats.messages_sent == 0


def test_oneway_order_preserved_between_same_pair():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n2.activate("rec", servant)
    for i in range(20):
        n1.orb.oneway(ref, "ping", i)
    sim.run_until_idle()
    assert [args[0] for __, args in servant.calls] == list(range(20))


def test_missing_servant_raises():
    sim, net, n1, n2 = _two_nodes()
    ghost = ObjectRef(node="node-2", key="ghost")
    n1.orb.oneway(ghost, "ping")
    with pytest.raises(ObjectNotFound):
        sim.run_until_idle()


def test_missing_method_raises():
    sim, net, n1, n2 = _two_nodes()
    ref = n2.activate("rec", Recorder())
    n1.orb.oneway(ref, "no_such_method")
    with pytest.raises(ObjectNotFound):
        sim.run_until_idle()


def test_duplicate_key_rejected():
    sim, net, n1, n2 = _two_nodes()
    n1.activate("rec", Recorder())
    with pytest.raises(ValueError):
        n1.activate("rec", Recorder())


def test_servant_gets_ref_and_orb():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n1.activate("rec", servant)
    assert servant.ref == ref
    assert servant.orb is n1.orb
    assert str(ref) == "node-1/rec"


def test_client_interceptor_fan_out():
    sim, net, n1, n2 = _two_nodes()
    primary, shadow = Recorder(), Recorder()
    ref_primary = n2.activate("primary", primary)
    ref_shadow = n2.activate("shadow", shadow)

    class FanOut(ClientInterceptor):
        def outgoing(self, request, orb):
            if request.target.key == "primary":
                return [request, request.retargeted(ref_shadow)]
            return [request]

    n1.orb.client_interceptors.append(FanOut())
    n1.orb.oneway(ref_primary, "ping", 7)
    sim.run_until_idle()
    assert primary.calls == [("ping", (7,))]
    assert shadow.calls == [("ping", (7,))]


def test_server_interceptor_absorbs():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n2.activate("rec", servant)

    class DropOdd(ServerInterceptor):
        def incoming(self, request, orb):
            if request.args and request.args[0] % 2 == 1:
                return None
            return request

    n2.orb.server_interceptors.append(DropOdd())
    for i in range(6):
        n1.orb.oneway(ref, "ping", i)
    sim.run_until_idle()
    assert [args[0] for __, args in servant.calls] == [0, 2, 4]


class Slow(Servant):
    def __init__(self, done):
        self.done = done

    def invocation_cost(self, request):
        return 10.0

    def work(self):
        self.done.append(self.orb.sim.now)


def test_thread_pool_limits_server_concurrency():
    sim, net, n1, n2 = _two_nodes(pool_size=2, cores=8)
    done = []
    refs = [n2.activate(f"slow-{i}", Slow(done)) for i in range(4)]
    for ref in refs:
        n1.orb.oneway(ref, "work")
    sim.run_until_idle()
    # 4 requests to 4 distinct servants, pool of 2: two batches.
    assert len(done) == 4
    assert done[1] - done[0] < 5.0
    assert done[2] - done[0] >= 10.0


def test_single_servant_serialises_handlers():
    """NewTOP's GC is single-threaded: concurrent requests to one servant
    execute one at a time even with idle cores and threads."""
    sim, net, n1, n2 = _two_nodes(pool_size=10, cores=8)
    done = []
    ref = n2.activate("slow", Slow(done))
    for __ in range(3):
        n1.orb.oneway(ref, "work")
    sim.run_until_idle()
    assert len(done) == 3
    assert done[1] - done[0] >= 10.0
    assert done[2] - done[1] >= 10.0


def test_servant_handlers_run_in_arrival_order():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n2.activate("rec", servant)
    # Interleave large (slow to unmarshal) and small requests; handler
    # order must still follow send order.
    for i in range(10):
        payload = "x" * (50_000 if i % 2 == 0 else 1)
        n1.orb.oneway(ref, "ping", i, payload)
    sim.run_until_idle()
    assert [args[0] for __, args in servant.calls] == list(range(10))


def test_request_size_includes_args():
    sim, net, n1, n2 = _two_nodes()
    ref = n2.activate("rec", Recorder())
    n1.orb.oneway(ref, "ping", "x" * 1000)
    sim.run_until_idle()
    assert net.stats.bytes_sent > 1000


def test_larger_requests_cost_more_cpu():
    results = []
    for payload in ("x", "x" * 100_000):
        sim, net, n1, n2 = _two_nodes()
        ref = n2.activate("rec", Recorder())
        n1.orb.oneway(ref, "ping", payload)
        sim.run_until_idle()
        results.append(sim.now)
    assert results[1] > results[0]


def test_crashed_node_swallows_requests():
    sim, net, n1, n2 = _two_nodes()
    servant = Recorder()
    ref = n2.activate("rec", servant)
    n2.crash()
    n1.orb.oneway(ref, "ping")
    sim.run_until_idle()
    assert servant.calls == []
    assert n2.failed
