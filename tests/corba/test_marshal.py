"""Tests for the marshaller: genuine byte round-trips."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba import MarshalError, marshal, unmarshal


def test_scalar_roundtrips():
    for value in (None, True, False, 0, -5, 2**80, 1.5, "héllo", b"\x00\xff", ""):
        assert unmarshal(marshal(value)) == value


def test_container_roundtrips():
    value = {"k": [1, 2, (3, "x")], "n": None, "b": b"raw"}
    assert unmarshal(marshal(value)) == value


def test_tuple_stays_tuple():
    assert unmarshal(marshal((1, 2))) == (1, 2)
    assert isinstance(unmarshal(marshal((1, 2))), tuple)


def test_dataclass_decodes_to_tagged_dict():
    @dataclasses.dataclass
    class Point:
        x: int
        y: int

    decoded = unmarshal(marshal(Point(3, 4)))
    assert decoded == {"__type__": "test_dataclass_decodes_to_tagged_dict.<locals>.Point", "x": 3, "y": 4}


def test_unmarshal_rejects_truncated():
    data = marshal([1, 2, 3])
    with pytest.raises(MarshalError):
        unmarshal(data[:-1])


def test_unmarshal_rejects_trailing_garbage():
    with pytest.raises(MarshalError):
        unmarshal(marshal(1) + b"junk")


def test_unmarshal_rejects_unknown_tag():
    with pytest.raises(MarshalError):
        unmarshal(b"Z")


def test_marshal_rejects_unsupported():
    with pytest.raises(MarshalError):
        marshal(object())


wire_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


@given(wire_values)
@settings(max_examples=200)
def test_roundtrip_property(value):
    assert unmarshal(marshal(value)) == value
