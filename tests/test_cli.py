"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


def test_single_system_run(capsys):
    assert main(["--system", "newtop", "--members", "3", "--messages", "3"]) == 0
    out = capsys.readouterr().out
    assert "newtop" in out
    assert "throughput (msg/s)" in out


def test_compare_mode(capsys):
    code = main(["--compare", "--members", "2", "--messages", "2", "--interval", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "newtop" in out and "fs-newtop" in out


def test_bad_members_rejected(capsys):
    assert main(["--members", "0"]) == 2


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "fs-newtop"
    assert args.members == 4
    assert args.service == "symmetric_total"


def test_invalid_service_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--service", "warp"])


# ----------------------------------------------------------------------
# scenario subcommands
# ----------------------------------------------------------------------
def test_list_subcommand_catalogues_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig6_latency", "fig7_throughput", "byzantine_flood", "churn"):
        assert name in out


def test_list_groups_scenarios_by_family(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    # Family headings appear, in catalogue order.
    positions = [
        out.index("== Paper figures"),
        out.index("== Adversarial audits"),
        out.index("== Scale & batching"),
        out.index("== Stress & comparators"),
    ]
    assert positions == sorted(positions)
    # Every scenario sits under its family heading.
    assert positions[0] < out.index("fig6_latency") < positions[1]
    assert positions[1] < out.index("adv_equivocation") < positions[2]
    assert positions[2] < out.index("scale_batch_ab") < positions[3]
    assert positions[3] < out.index("pbft_head_to_head")


def test_scenario_family_mapping():
    from repro.cli import scenario_family

    assert scenario_family("fig6_latency") == "fig"
    assert scenario_family("fig7_throughput") == "fig"
    assert scenario_family("adv_replay") == "adv"
    assert scenario_family("scale_groups") == "scale"
    assert scenario_family("pbft_head_to_head") == "stress"
    assert scenario_family("mixed_rw") == "stress"


def test_run_subcommand_unknown_scenario(capsys):
    assert main(["run", "--scenario", "fig99_warp"]) == 2
    assert "fig99_warp" in capsys.readouterr().out


def test_list_family_filters_the_catalogue(capsys):
    assert main(["list", "--family", "scale_shard"]) == 0
    out = capsys.readouterr().out
    assert "scale_shard_ab" in out
    assert "scale_shard_xratio" in out
    assert "fig6_latency" not in out
    assert "scale_batch_ab" not in out  # prefix match, not family match


def test_list_family_accepts_family_keys(capsys):
    assert main(["list", "--family", "fig"]) == 0
    out = capsys.readouterr().out
    assert "fig6_latency" in out
    assert "adv_equivocation" not in out


def test_list_unknown_family_exits_nonzero(capsys):
    assert main(["list", "--family", "warp9"]) == 2
    out = capsys.readouterr().out
    assert "no scenarios in family 'warp9'" in out
    assert "known families" in out


def test_run_subcommand_prints_tables(capsys):
    code = main(["run", "--scenario", "partition_heal"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput_msgs_per_s" in out
    assert "view_changes" in out
    assert "expected:" in out


def test_campaign_and_report_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "campaign.jsonl"
    code = main(
        [
            "campaign",
            "--scenario",
            "pbft_head_to_head",
            "--repeats",
            "2",
            "--jobs",
            "2",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    campaign_out = capsys.readouterr().out
    assert "8 runs" in campaign_out  # 2 systems x 2 points x 2 repeats
    assert out_path.exists()

    assert main(["report", "--results", str(out_path)]) == 0
    report_out = capsys.readouterr().out
    assert "2 repeats" in report_out
    assert "throughput ordering" in report_out


def test_report_missing_file(tmp_path, capsys):
    assert main(["report", "--results", str(tmp_path / "nope.jsonl")]) == 2


# ----------------------------------------------------------------------
# sharded runs: repro run --shards and the report's shard columns
# ----------------------------------------------------------------------
def test_run_sharded_scenario_prints_shard_tables(capsys):
    assert main(["run", "--scenario", "scale_shard_smoke"]) == 0
    out = capsys.readouterr().out
    assert "per_shard_throughput" in out
    assert "cross_shard_latency_mean_ms" in out
    assert "load_imbalance" in out
    assert "sharding:" in out


def test_run_shards_override(capsys):
    code = main(["run", "--scenario", "scale_shard_smoke", "--shards", "4",
                 "--cross-shard-ratio", "0.25"])
    assert code == 0
    assert "up to S=4" in capsys.readouterr().out


def test_run_shards_rejects_indivisible_group(capsys):
    assert main(["run", "--scenario", "scale_shard_smoke", "--shards", "3"]) == 2
    assert "not divisible" in capsys.readouterr().out


def test_run_shards_rejects_non_fs_systems(capsys):
    assert main(["run", "--scenario", "fig6_latency", "--shards", "2"]) == 2
    assert "--systems fs-newtop" in capsys.readouterr().out


def test_run_cross_shard_ratio_needs_shards(capsys):
    code = main(["run", "--scenario", "scale_shard_smoke",
                 "--cross-shard-ratio", "0.5"])
    assert code == 2
    assert "--cross-shard-ratio needs --shards" in capsys.readouterr().out


def test_sharded_campaign_report_shows_shard_columns(tmp_path, capsys):
    out_path = tmp_path / "shard.jsonl"
    assert main(["campaign", "--scenario", "scale_shard_smoke",
                 "--out", str(out_path)]) == 0
    capsys.readouterr()
    assert main(["report", "--results", str(out_path)]) == 0
    report_out = capsys.readouterr().out
    assert "per_shard_throughput" in report_out
    assert "load_imbalance" in report_out
    assert "sharding:" in report_out


def test_audit_sharded_scenario_passes(capsys):
    assert main(["audit", "--scenario", "scale_shard_smoke"]) == 0
    out = capsys.readouterr().out
    assert "cross-shard-order" in out
    assert "verdict: PASS" in out


# ----------------------------------------------------------------------
# bench subcommand
# ----------------------------------------------------------------------
def _fake_baseline(path, name, ops_per_s):
    import json

    path.write_text(json.dumps({
        "version": 1,
        "meta": {},
        "benchmarks": {name: {"ops": 100, "wall_s": 1.0, "ops_per_s": ops_per_s}},
    }))


def test_bench_writes_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["bench", "--only", "hmac_sign_verify", "--repeats", "1",
                 "--out", str(out)]) == 0
    assert out.exists()
    assert "hmac_sign_verify" in capsys.readouterr().out


def test_bench_check_passes_against_honest_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # a baseline slow enough that any machine beats it
    _fake_baseline(baseline, "hmac_sign_verify", 0.001)
    code = main(["bench", "--only", "hmac_sign_verify", "--repeats", "1",
                 "--out", str(tmp_path / "r.json"), "--check", str(baseline)])
    assert code == 0
    assert "OK: within tolerance" in capsys.readouterr().out


def test_bench_check_fails_on_injected_regression(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # an impossibly fast baseline: the measured run must "regress"
    _fake_baseline(baseline, "hmac_sign_verify", 1e15)
    code = main(["bench", "--only", "hmac_sign_verify", "--repeats", "1",
                 "--out", str(tmp_path / "r.json"), "--check", str(baseline)])
    assert code == 1
    assert "regression" in capsys.readouterr().out


def test_bench_update_writes_baseline(tmp_path):
    baseline = tmp_path / "new_baseline.json"
    assert main(["bench", "--only", "hmac_sign_verify", "--repeats", "1",
                 "--out", str(tmp_path / "r.json"), "--update", str(baseline)]) == 0
    assert baseline.exists()


def test_bench_unknown_benchmark_rejected(tmp_path, capsys):
    assert main(["bench", "--only", "warp_drive",
                 "--out", str(tmp_path / "r.json")]) == 2
    assert "unknown benchmarks" in capsys.readouterr().out


def test_bench_unreadable_baseline_rejected(tmp_path, capsys):
    assert main(["bench", "--only", "hmac_sign_verify",
                 "--out", str(tmp_path / "r.json"),
                 "--check", str(tmp_path / "nope.json")]) == 2
    assert "cannot read baseline" in capsys.readouterr().out


# ----------------------------------------------------------------------
# audit subcommand
# ----------------------------------------------------------------------
def test_audit_passes_on_clean_scenario(capsys):
    assert main(["audit", "--scenario", "adv_clean_baseline"]) == 0
    out = capsys.readouterr().out
    assert "verdict: PASS" in out
    assert "0 failing" in out


def test_audit_unknown_scenario_rejected(capsys):
    assert main(["audit", "--scenario", "adv_warp"]) == 2
    assert "adv_warp" in capsys.readouterr().out


def test_audit_unknown_adversary_rejected(capsys):
    assert main(["audit", "--scenario", "adv_clean_baseline",
                 "--adversary", "meteor"]) == 2
    assert "unknown adversary" in capsys.readouterr().out


def test_audit_overlays_named_adversary(capsys):
    code = main(["audit", "--scenario", "adv_clean_baseline",
                 "--adversary", "selective_mute", "--member", "1", "--at", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "adversary overlay: selective_mute" in out
    assert "fail_signals=1" in out


def test_audit_fails_nonzero_when_detection_is_broken(monkeypatch, capsys):
    from repro.core.fso import Fso

    monkeypatch.setattr(Fso, "_start_signaling", lambda self, reason: None)
    assert main(["audit", "--scenario", "adv_selective_mute"]) == 1
    out = capsys.readouterr().out
    assert "verdict: FAIL" in out
    assert "no fail-signal followed" in out


def test_audit_pair_adversary_skips_newtop_cleanly(capsys):
    # partition_heal is newtop-only: every cell is skipped with a note,
    # so nothing is auditable -- a clean error, not a traceback.
    code = main(["audit", "--scenario", "partition_heal", "--adversary", "mute"])
    assert code == 2
    out = capsys.readouterr().out
    assert "fs-newtop only" in out
    assert "nothing auditable" in out
    assert "Traceback" not in out


def test_audit_bad_overlay_overrides_rejected_cleanly(capsys):
    assert main(["audit", "--scenario", "adv_clean_baseline",
                 "--adversary", "mute", "--member", "9"]) == 2
    assert "only 4 members" in capsys.readouterr().out
    assert main(["audit", "--scenario", "adv_clean_baseline",
                 "--adversary", "mute", "--at", "-5"]) == 2
    assert "bad adversary override" in capsys.readouterr().out
