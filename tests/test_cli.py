"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


def test_single_system_run(capsys):
    assert main(["--system", "newtop", "--members", "3", "--messages", "3"]) == 0
    out = capsys.readouterr().out
    assert "newtop" in out
    assert "throughput (msg/s)" in out


def test_compare_mode(capsys):
    code = main(["--compare", "--members", "2", "--messages", "2", "--interval", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "newtop" in out and "fs-newtop" in out


def test_bad_members_rejected(capsys):
    assert main(["--members", "0"]) == 2


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "fs-newtop"
    assert args.members == 4
    assert args.service == "symmetric_total"


def test_invalid_service_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--service", "warp"])


# ----------------------------------------------------------------------
# scenario subcommands
# ----------------------------------------------------------------------
def test_list_subcommand_catalogues_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig6_latency", "fig7_throughput", "byzantine_flood", "churn"):
        assert name in out


def test_run_subcommand_unknown_scenario(capsys):
    assert main(["run", "--scenario", "fig99_warp"]) == 2
    assert "fig99_warp" in capsys.readouterr().out


def test_run_subcommand_prints_tables(capsys):
    code = main(["run", "--scenario", "partition_heal"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput_msgs_per_s" in out
    assert "view_changes" in out
    assert "expected:" in out


def test_campaign_and_report_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "campaign.jsonl"
    code = main(
        [
            "campaign",
            "--scenario",
            "pbft_head_to_head",
            "--repeats",
            "2",
            "--jobs",
            "2",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    campaign_out = capsys.readouterr().out
    assert "8 runs" in campaign_out  # 2 systems x 2 points x 2 repeats
    assert out_path.exists()

    assert main(["report", "--results", str(out_path)]) == 0
    report_out = capsys.readouterr().out
    assert "2 repeats" in report_out
    assert "throughput ordering" in report_out


def test_report_missing_file(tmp_path, capsys):
    assert main(["report", "--results", str(tmp_path / "nope.jsonl")]) == 2
