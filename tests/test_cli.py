"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


def test_single_system_run(capsys):
    assert main(["--system", "newtop", "--members", "3", "--messages", "3"]) == 0
    out = capsys.readouterr().out
    assert "newtop" in out
    assert "throughput (msg/s)" in out


def test_compare_mode(capsys):
    code = main(["--compare", "--members", "2", "--messages", "2", "--interval", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "newtop" in out and "fs-newtop" in out


def test_bad_members_rejected(capsys):
    assert main(["--members", "0"]) == 2


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.system == "fs-newtop"
    assert args.members == 4
    assert args.service == "symmetric_total"


def test_invalid_service_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--service", "warp"])
