"""Tests for the synchronous LAN link (assumption A2)."""

import pytest

from repro.net import (
    ConstantDelay,
    ExponentialDelay,
    SynchronousLink,
    SynchronyViolation,
    UniformDelay,
)
from repro.sim import Process, Simulator


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def _link(delta=2.0, delay=None, seed=0):
    sim = Simulator(seed=seed)
    link = SynchronousLink(sim, "lan", delta=delta, delay=delay)
    p, q = Sink(sim, "p"), Sink(sim, "q")
    link.attach("p", p)
    link.attach("q", q)
    return sim, link, p, q


def test_all_messages_delivered_reliably():
    sim, link, p, q = _link(delta=2.0, delay=UniformDelay(0.1, 2.0))
    for i in range(100):
        link.send("p", i)
    sim.run_until_idle()
    assert len(q.received) == 100
    assert link.stats.messages_dropped == 0


def test_delivery_latency_bounded_by_delta():
    sim = Simulator()
    link = SynchronousLink(sim, "lan", delta=3.0, delay=UniformDelay(0.5, 3.0))
    latencies = []

    class Probe(Sink):
        def on_message(self, envelope):
            latencies.append(self.sim.now - envelope.sent_at)

    p, q = Probe(sim, "p"), Probe(sim, "q")
    link.attach("p", p)
    link.attach("q", q)
    for __ in range(200):
        link.send("p", "m")
    sim.run_until_idle()
    assert latencies
    assert all(lat <= 3.0 + 1e-9 for lat in latencies)


def test_default_delay_is_half_delta():
    sim, link, p, q = _link(delta=4.0)
    link.send("q", "x")
    sim.run_until_idle()
    assert sim.now == 2.0


def test_bidirectional():
    sim, link, p, q = _link()
    link.send("p", "to-q")
    link.send("q", "to-p")
    sim.run_until_idle()
    assert [e.payload for e in q.received] == ["to-q"]
    assert [e.payload for e in p.received] == ["to-p"]


def test_fifo_order_preserved():
    sim, link, p, q = _link(delta=5.0, delay=UniformDelay(0.1, 5.0))
    for i in range(30):
        link.send("p", i)
    sim.run_until_idle()
    assert [e.payload for e in q.received] == list(range(30))


def test_unbounded_delay_model_rejected():
    sim = Simulator()
    with pytest.raises(SynchronyViolation):
        SynchronousLink(sim, "lan", delta=2.0, delay=ExponentialDelay(0, 1))


def test_delay_bound_above_delta_rejected():
    sim = Simulator()
    with pytest.raises(SynchronyViolation):
        SynchronousLink(sim, "lan", delta=2.0, delay=ConstantDelay(3.0))


def test_invalid_delta_rejected():
    with pytest.raises(ValueError):
        SynchronousLink(Simulator(), "lan", delta=0.0)


def test_third_endpoint_rejected():
    sim, link, p, q = _link()
    with pytest.raises(ValueError):
        link.attach("r", Sink(sim, "r"))


def test_injected_delay_violates_bound():
    """Fault injection can break A2 -- the ablation for spurious
    fail-signals depends on this being possible, explicitly."""
    sim = Simulator()
    link = SynchronousLink(sim, "lan", delta=2.0)
    latencies = []

    class Probe(Sink):
        def on_message(self, envelope):
            latencies.append(self.sim.now - envelope.sent_at)

    p, q = Probe(sim, "p"), Probe(sim, "q")
    link.attach("p", p)
    link.attach("q", q)
    link.inject_extra_delay("p", 50.0)
    link.send("p", "slow")
    sim.run_until_idle()
    assert latencies == [51.0]
    link.clear_injected_delay("p")
    link.send("p", "normal")
    sim.run_until_idle()
    assert latencies[-1] == 1.0


def test_severed_link_drops():
    sim, link, p, q = _link()
    link.sever()
    link.send("p", "lost")
    sim.run_until_idle()
    assert q.received == []
    assert link.stats.messages_dropped == 1
    link.restore()
    link.send("p", "arrives")
    sim.run_until_idle()
    assert [e.payload for e in q.received] == ["arrives"]


def test_peer_of():
    sim, link, p, q = _link()
    assert link.peer_of("p") == "q"
    assert link.peer_of("q") == "p"


def test_peer_of_unwired_raises():
    sim = Simulator()
    link = SynchronousLink(sim, "lan", delta=1.0)
    link.attach("p", Sink(sim, "p"))
    with pytest.raises(ValueError):
        link.peer_of("p")
