"""Tests for the asynchronous network fabric."""

import pytest

from repro.net import AddressUnknown, ConstantDelay, Network, UniformDelay
from repro.sim import Process, Simulator


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def _net(seed=0, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, **kwargs)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    net.register("a", a)
    net.register("b", b)
    return sim, net, a, b


def test_basic_delivery():
    sim, net, a, b = _net(default_delay=ConstantDelay(5.0))
    net.send("a", "b", "hello")
    sim.run_until_idle()
    assert len(b.received) == 1
    envelope = b.received[0]
    assert envelope.payload == "hello"
    assert envelope.src == "a"
    assert envelope.sent_at == 0.0
    assert sim.now == 5.0


def test_unknown_destination_raises():
    sim, net, a, b = _net()
    with pytest.raises(AddressUnknown):
        net.send("a", "nowhere", "x")
    with pytest.raises(AddressUnknown):
        net.send("nowhere", "a", "x")


def test_fifo_per_pair():
    sim, net, a, b = _net(default_delay=UniformDelay(1.0, 50.0), fifo=True)
    for i in range(50):
        net.send("a", "b", i)
    sim.run_until_idle()
    assert [e.payload for e in b.received] == list(range(50))


def test_non_fifo_can_reorder():
    sim, net, a, b = _net(default_delay=UniformDelay(1.0, 50.0), fifo=False)
    for i in range(50):
        net.send("a", "b", i)
    sim.run_until_idle()
    payloads = [e.payload for e in b.received]
    assert sorted(payloads) == list(range(50))
    assert payloads != list(range(50))  # overwhelmingly likely reordered


def test_pair_delay_override():
    sim, net, a, b = _net(default_delay=ConstantDelay(100.0))
    net.set_pair_delay("a", "b", ConstantDelay(1.0))
    net.send("a", "b", "fast")
    sim.run_until_idle()
    assert sim.now == 1.0


def test_partition_blocks_cross_traffic():
    sim = Simulator()
    net = Network(sim, default_delay=ConstantDelay(1.0))
    sinks = {name: Sink(sim, name) for name in ("a", "b", "c", "d")}
    for name, sink in sinks.items():
        net.register(name, sink)
    net.partition(["a", "b"], ["c", "d"])
    net.send("a", "b", "intra")
    net.send("a", "c", "inter")
    net.send("d", "b", "inter2")
    sim.run_until_idle()
    assert [e.payload for e in sinks["b"].received] == ["intra"]
    assert sinks["c"].received == []
    assert net.stats.messages_dropped == 2


def test_heal_restores_traffic():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    net.block("a", "b")
    net.send("a", "b", "lost")
    net.heal()
    net.send("a", "b", "arrives")
    sim.run_until_idle()
    assert [e.payload for e in b.received] == ["arrives"]


def test_drop_rate():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    net.set_drop_rate(0.5)
    for i in range(200):
        net.send("a", "b", i)
    sim.run_until_idle()
    assert 40 < len(b.received) < 160
    assert net.stats.messages_dropped == 200 - len(b.received)


def test_drop_rate_validation():
    sim, net, *_ = _net()
    with pytest.raises(ValueError):
        net.set_drop_rate(1.5)


def test_fault_filter_targets_flows():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    net.set_fault_filter(lambda env: env.payload != "evil")
    net.send("a", "b", "good")
    net.send("a", "b", "evil")
    sim.run_until_idle()
    assert [e.payload for e in b.received] == ["good"]
    net.set_fault_filter(None)
    net.send("a", "b", "evil")
    sim.run_until_idle()
    assert [e.payload for e in b.received] == ["good", "evil"]


def test_stats_accumulate():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    net.send("a", "b", b"xyz")
    sim.run_until_idle()
    assert net.stats.messages_sent == 1
    assert net.stats.messages_delivered == 1
    assert net.stats.bytes_sent > 3  # payload + header


def test_explicit_size_overrides_estimate():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    net.send("a", "b", "tiny", size=9999)
    sim.run_until_idle()
    assert b.received[0].size == 9999
    assert net.stats.bytes_sent == 9999


def test_unregister_drops_in_flight():
    sim, net, a, b = _net(default_delay=ConstantDelay(5.0))
    net.send("a", "b", "x")
    net.unregister("b")
    sim.run_until_idle()
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_killed_process_ignores_but_counts_delivery():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    b.kill()
    net.send("a", "b", "x")
    sim.run_until_idle()
    assert b.received == []
    assert net.stats.messages_delivered == 1


def test_msg_ids_unique_and_increasing():
    sim, net, a, b = _net(default_delay=ConstantDelay(1.0))
    for i in range(5):
        net.send("a", "b", i)
    sim.run_until_idle()
    ids = [e.msg_id for e in b.received]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5
