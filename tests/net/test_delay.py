"""Tests for delay models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ConstantDelay, ExponentialDelay, SpikeDelay, UniformDelay


def test_constant_delay():
    model = ConstantDelay(3.5)
    assert model.sample(random.Random(0)) == 3.5
    assert model.bound() == 3.5


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantDelay(-1)


def test_uniform_delay_in_range():
    model = UniformDelay(1.0, 2.0)
    rng = random.Random(1)
    for __ in range(200):
        assert 1.0 <= model.sample(rng) <= 2.0
    assert model.bound() == 2.0


def test_uniform_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformDelay(2.0, 1.0)
    with pytest.raises(ValueError):
        UniformDelay(-1.0, 1.0)


def test_exponential_floor_and_cap():
    model = ExponentialDelay(floor=1.0, mean=5.0, cap=10.0)
    rng = random.Random(2)
    samples = [model.sample(rng) for __ in range(500)]
    assert all(1.0 <= s <= 10.0 for s in samples)
    assert model.bound() == 10.0


def test_exponential_uncapped_has_no_bound():
    assert ExponentialDelay(floor=0.0, mean=1.0).bound() is None


def test_exponential_rejects_bad_params():
    with pytest.raises(ValueError):
        ExponentialDelay(floor=-1, mean=1)
    with pytest.raises(ValueError):
        ExponentialDelay(floor=0, mean=0)
    with pytest.raises(ValueError):
        ExponentialDelay(floor=5, mean=1, cap=4)


def test_spike_delay_adds_spikes():
    model = SpikeDelay(ConstantDelay(1.0), spike_probability=0.5, spike_ms=100.0)
    rng = random.Random(3)
    samples = [model.sample(rng) for __ in range(400)]
    spiked = [s for s in samples if s > 50]
    assert 100 < len(spiked) < 300  # roughly half
    assert all(s in (1.0, 101.0) for s in samples)
    assert model.bound() == 101.0


def test_spike_over_unbounded_base_is_unbounded():
    model = SpikeDelay(ExponentialDelay(0, 1), 0.1, 10)
    assert model.bound() is None


def test_spike_validation():
    with pytest.raises(ValueError):
        SpikeDelay(ConstantDelay(1), 1.5, 1)
    with pytest.raises(ValueError):
        SpikeDelay(ConstantDelay(1), 0.5, -1)


@given(
    low=st.floats(min_value=0, max_value=100, allow_nan=False),
    span=st.floats(min_value=0, max_value=100, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100)
def test_uniform_respects_bound_property(low, span, seed):
    model = UniformDelay(low, low + span)
    assert model.sample(random.Random(seed)) <= model.bound() + 1e-9
