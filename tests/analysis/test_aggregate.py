"""Campaign roll-ups: the service and observability summaries."""

from repro.analysis import obs_summary, service_summary
from repro.experiments.campaign import RunRecord


def make_record(metrics, system="fs-newtop", x_label=4, repeat=0):
    return RunRecord(
        scenario="test",
        system=system,
        x_label=x_label,
        repeat=repeat,
        seed=0,
        metrics=metrics,
    )


def test_service_summary_p999_and_rejection_reasons():
    records = [
        make_record(
            {
                "service_admitted": 90.0,
                "service_rejected": 10.0,
                "service_rejected_auth": 2.0,
                "service_rejected_rate": 5.0,
                "service_rejected_overload": 3.0,
                "service_submit_p99_ms": 40.0,
                "service_submit_p999_ms": 80.0,
            }
        ),
        make_record(
            {
                "service_admitted": 10.0,
                "service_rejected": 0.0,
                "service_submit_p99_ms": 50.0,
                "service_submit_p999_ms": 60.0,
            },
            repeat=1,
        ),
    ]
    summary = service_summary(records)
    assert summary["admitted"] == 100
    assert summary["rejected"] == 10
    assert summary["rejected_auth"] == 2
    assert summary["rejected_rate"] == 5
    assert summary["rejected_overload"] == 3
    # Worst cell wins for upper quantiles.
    assert summary["submit_p99_ms"] == 50.0
    assert summary["submit_p999_ms"] == 80.0


def test_service_summary_empty_without_served_records():
    assert service_summary([make_record({"throughput_msgs_per_s": 1.0})]) == {}


def test_obs_summary_counts_sum_quantiles_max():
    records = [
        make_record(
            {
                "obs_sign_count": 100.0,
                "obs_sign_p99_ms": 2.0,
                "obs_batch_deferrals": 3.0,
                "throughput_msgs_per_s": 50.0,
            }
        ),
        make_record(
            {"obs_sign_count": 50.0, "obs_sign_p99_ms": 5.0}, repeat=1
        ),
    ]
    summary = obs_summary(records)
    assert summary["observed_cells"] == 2
    assert summary["obs_sign_count"] == 150.0  # counts sum
    assert summary["obs_sign_p99_ms"] == 5.0  # quantiles take the worst
    assert summary["obs_batch_deferrals"] == 3.0
    assert "throughput_msgs_per_s" not in summary


def test_obs_summary_empty_without_instrumented_records():
    assert obs_summary([make_record({"fail_signals": 0.0})]) == {}
