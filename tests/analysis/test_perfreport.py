"""Unit tests for the perf benchmark suite and baseline comparison."""

import pytest

from repro.analysis import perfreport


def _report(**rates):
    return {
        "version": perfreport.REPORT_VERSION,
        "meta": {},
        "benchmarks": {
            name: {"ops": 100, "wall_s": 100 / rate, "ops_per_s": rate}
            for name, rate in rates.items()
        },
    }


# ----------------------------------------------------------------------
# compare / check
# ----------------------------------------------------------------------
def test_compare_ok_within_tolerance():
    comparisons = perfreport.compare(
        _report(a=95.0, b=80.0), _report(a=100.0, b=100.0), tolerance=0.25
    )
    assert {c.name: c.status for c in comparisons} == {"a": "ok", "b": "ok"}
    assert perfreport.check_passed(comparisons)


def test_compare_flags_regression_beyond_tolerance():
    comparisons = perfreport.compare(
        _report(a=70.0), _report(a=100.0), tolerance=0.25
    )
    (comparison,) = comparisons
    assert comparison.status == "regression"
    assert comparison.failed
    assert comparison.ratio == pytest.approx(0.7)
    assert not perfreport.check_passed(comparisons)


def test_compare_faster_is_never_a_regression():
    comparisons = perfreport.compare(_report(a=500.0), _report(a=100.0))
    assert comparisons[0].status == "ok"


def test_missing_benchmark_fails_the_check():
    comparisons = perfreport.compare(_report(b=100.0), _report(a=100.0))
    by_name = {c.name: c for c in comparisons}
    assert by_name["a"].status == "missing"
    assert by_name["a"].failed
    assert by_name["b"].status == "new"
    assert not by_name["b"].failed
    assert not perfreport.check_passed(comparisons)


def test_compare_rejects_bad_tolerance():
    with pytest.raises(ValueError):
        perfreport.compare(_report(a=1.0), _report(a=1.0), tolerance=1.5)


def test_comparison_render_mentions_rates():
    (comparison,) = perfreport.compare(_report(a=50.0), _report(a=100.0))
    text = comparison.render()
    assert "a" in text and "regression" in text and "x0.50" in text


# ----------------------------------------------------------------------
# suite execution and report round-trip
# ----------------------------------------------------------------------
def test_run_suite_subset_and_report_roundtrip(tmp_path):
    results = perfreport.run_suite(["hmac_sign_verify"], repeats=1)
    assert set(results) == {"hmac_sign_verify"}
    result = results["hmac_sign_verify"]
    assert result.ops > 0 and result.wall_s > 0 and result.ops_per_s > 0

    report = perfreport.build_report(results)
    path = perfreport.write_report(report, tmp_path / "perf.json")
    loaded = perfreport.load_report(path)
    assert loaded["version"] == perfreport.REPORT_VERSION
    assert loaded["benchmarks"]["hmac_sign_verify"]["ops"] == result.ops
    # a freshly measured report compares clean against itself
    assert perfreport.check_passed(perfreport.compare(loaded, loaded))


def test_run_suite_executes_a_macro_bench():
    # The macro benches drive _run_ordering end to end; this pins the
    # runner's return shape so a refactor there cannot silently break
    # `repro bench` while the micro benches keep passing.
    results = perfreport.run_suite(["fig6_mini"], repeats=1)
    assert results["fig6_mini"].ops > 0


def test_run_suite_rejects_unknown_and_bad_repeats():
    with pytest.raises(KeyError):
        perfreport.run_suite(["no_such_bench"])
    with pytest.raises(ValueError):
        perfreport.run_suite(["hmac_sign_verify"], repeats=0)


def test_suite_covers_micro_and_macro():
    names = set(perfreport.SUITE)
    assert {"encode_fresh", "encode_cached", "hmac_sign_verify",
            "rsa_sign_verify", "sim_events", "fig6_mini", "fig7_mini"} <= names
