"""Tests for experiment table rendering."""

import pytest

from repro.analysis import format_series_table


def test_basic_table():
    text = format_series_table(
        "Figure 6: Order Latency",
        "members",
        [2, 3],
        {"NewTOP": [10.0, 20.0], "FS-NewTOP": [15.0, 32.0]},
        unit="ms",
    )
    assert "Figure 6" in text
    assert "members" in text
    assert "NewTOP (ms)" in text
    assert "15.0" in text and "32.0" in text


def test_overhead_column():
    text = format_series_table(
        "T",
        "x",
        [1],
        {"base": [10.0], "other": [15.0]},
        overhead_between=("base", "other"),
    )
    assert "+50%" in text


def test_zero_base_overhead():
    text = format_series_table(
        "T", "x", [1], {"base": [0.0], "other": [15.0]}, overhead_between=("base", "other")
    )
    assert "n/a" in text


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        format_series_table("T", "x", [1, 2], {"a": [1.0]})


def test_rows_render_in_order():
    text = format_series_table("T", "x", [100, 2], {"a": [1.5, 22222.25]})
    lines = text.splitlines()
    # title, rule, header, separator, then one line per x value
    assert len(lines) == 6
    assert lines[4].startswith("100")
    assert lines[5].startswith("2")
    assert "22222.2" in lines[5]
