"""Tests for latency/throughput measurement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LatencyRecorder, summarize


def test_summary_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == 2.5
    assert s.median == 2.0
    assert s.maximum == 4.0


def test_summary_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_p95():
    s = summarize(list(map(float, range(1, 101))))
    assert s.p95 == 95.0


def test_recorder_per_delivery_latency():
    rec = LatencyRecorder()
    rec.sent("m1", 10.0)
    rec.delivered("m1", "a", 15.0)
    rec.delivered("m1", "b", 18.0)
    assert rec.per_delivery == [5.0, 8.0]


def test_recorder_completion_latency():
    rec = LatencyRecorder()
    rec.sent("m1", 10.0)
    rec.delivered("m1", "a", 15.0)
    rec.delivered("m1", "b", 18.0)
    assert rec.completion_latencies(2) == [8.0]
    assert rec.completion_latencies(3) == []  # not everywhere yet
    assert rec.fully_delivered(2) == 1


def test_recorder_ignores_unknown_and_duplicate():
    rec = LatencyRecorder()
    rec.sent("m1", 0.0)
    rec.delivered("ghost", "a", 5.0)
    rec.delivered("m1", "a", 5.0)
    rec.delivered("m1", "a", 9.0)  # duplicate from same member
    assert rec.per_delivery == [5.0]


def test_recorder_duplicate_send_rejected():
    rec = LatencyRecorder()
    rec.sent("m1", 0.0)
    with pytest.raises(ValueError):
        rec.sent("m1", 1.0)


def test_throughput():
    rec = LatencyRecorder()
    for i in range(10):
        rec.sent(i, float(i * 100))
        rec.delivered(i, "a", float(i * 100 + 50))
    # 10 messages over (950 - 0) ms
    assert rec.throughput_msgs_per_s(1) == pytest.approx(10 / 0.95)


def test_throughput_zero_cases():
    rec = LatencyRecorder()
    assert rec.throughput_msgs_per_s(1) == 0.0
    rec.sent("m", 0.0)
    assert rec.throughput_msgs_per_s(1) == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=100)
def test_summary_bounds_property(samples):
    s = summarize(samples)
    eps = 1e-6 * (1 + max(samples))
    assert min(samples) <= s.median <= s.maximum == max(samples)
    assert min(samples) - eps <= s.mean <= max(samples) + eps
    assert s.median <= s.p95 <= s.maximum


# ----------------------------------------------------------------------
# the shared nearest-rank percentile (consolidated helper)
# ----------------------------------------------------------------------
def test_percentile_nearest_rank_semantics():
    from repro.analysis.metrics import percentile

    sample = [3.0, 1.0, 4.0, 1.0, 5.0]
    assert percentile(sample, 0.0) == 1.0
    assert percentile(sample, 0.5) == 3.0
    assert percentile(sample, 1.0) == 5.0
    # ceil(0.99 * 5) = 5 -> the maximum, the convention every caller pins.
    assert percentile(sample, 0.99) == 5.0


def test_percentile_empty_and_validation():
    from repro.analysis.metrics import percentile

    assert percentile([], 0.95) == 0.0
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)


def test_percentile_does_not_mutate_input():
    from repro.analysis.metrics import percentile

    sample = [5.0, 1.0, 3.0]
    percentile(sample, 0.5)
    assert sample == [5.0, 1.0, 3.0]


def test_percentile_matches_internal_fast_path():
    from repro.analysis.metrics import _percentile, percentile

    sample = sorted(float(i) for i in range(1, 42))
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0):
        assert percentile(sample, q) == _percentile(sample, q)


def test_percentile_reexported_everywhere():
    """Every consumer resolves to the single consolidated helper."""
    from repro.analysis import percentile as from_analysis
    from repro.analysis.metrics import percentile as canonical
    from repro.transport.calibration import percentile as from_calibration

    assert from_analysis is canonical
    assert from_calibration is canonical


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100)
def test_percentile_always_a_sample_member(samples, q):
    from repro.analysis.metrics import percentile

    assert percentile(samples, q) in samples
