"""The adversary engine against live groups: triggers, toggles,
combinator timing, and wiring validation."""

import pytest

from repro.adversary import AdversaryEngine, AdversarySpec, intermittent, seq
from repro.adversary.engine import AdversaryWiringError
from repro.core.fso import FsoRole
from repro.experiments import ScenarioSpec, build_ordering_group
from repro.sim import Simulator


def _fs_group(sim, adversaries, n_members=2, **overrides):
    spec = ScenarioSpec(
        system="fs-newtop",
        n_members=n_members,
        collapsed=False,
        adversaries=tuple(adversaries),
        **overrides,
    )
    group = build_ordering_group(sim, spec)
    engine = AdversaryEngine(sim, group, spec.adversaries)
    engine.install()
    return group


def test_flag_strategy_activates_and_deactivates():
    sim = Simulator(seed=0)
    group = _fs_group(
        sim, [AdversarySpec(kind="mute", member=0, at=100.0, until=300.0)]
    )
    fso = group.byzantine_fso(0, FsoRole.LEADER)
    assert not fso.faults.mute_lan
    sim.run(until=150.0)
    assert fso.faults.mute_lan
    sim.run(until=350.0)
    assert not fso.faults.mute_lan


def test_intermittent_toggles_with_duty_cycle():
    sim = Simulator(seed=0)
    group = _fs_group(
        sim,
        [
            intermittent(
                AdversarySpec(kind="selective_mute", member=0),
                at=100.0,
                until=500.0,
                period=200.0,
                duty=0.5,
            )
        ],
    )
    fso = group.byzantine_fso(0, FsoRole.LEADER)
    probes = {150.0: True, 250.0: False, 350.0: True, 450.0: False}
    for at, expected in sorted(probes.items()):
        sim.run(until=at)
        assert fso.faults.drop_singles is expected, f"at t={at}"


def test_seq_shifts_children_back_to_back():
    sim = Simulator(seed=0)
    group = _fs_group(
        sim,
        [
            seq(
                AdversarySpec(kind="scramble_burst", member=0, at=0.0, until=100.0),
                AdversarySpec(kind="corrupt", member=0, at=50.0, until=150.0),
                at=200.0,
            )
        ],
    )
    fso = group.byzantine_fso(0, FsoRole.LEADER)
    sim.run(until=250.0)  # inside child 1
    assert fso.faults.scramble_order and not fso.faults.corrupt_outputs
    # child 1 ends at 300; child 2 runs [350, 450]
    sim.run(until=320.0)
    assert not fso.faults.scramble_order and not fso.faults.corrupt_outputs
    sim.run(until=400.0)
    assert fso.faults.corrupt_outputs
    sim.run(until=460.0)
    assert not fso.faults.any_active()


def test_delay_skew_injects_and_clears():
    sim = Simulator(seed=0)
    group = _fs_group(
        sim,
        [AdversarySpec(kind="delay_skew", member=0, at=100.0, until=300.0, extra_ms=40.0)],
    )
    process = group.fs_process_of(0)
    src = process.leader.node.name
    sim.run(until=150.0)
    assert process.link._injected_extra.get(src) == 40.0
    sim.run(until=350.0)
    assert src not in process.link._injected_extra


def test_spurious_signal_fires_fs2():
    sim = Simulator(seed=0)
    group = _fs_group(sim, [AdversarySpec(kind="spurious_signal", member=1, at=200.0)])
    sim.run(until=250.0)
    assert group.fs_process_of(1).signaled
    assert group.fs_process_of(1).leader.signal_reason == "injected-fs2"


def test_churn_storm_staggers_crashes():
    sim = Simulator(seed=0)
    group = _fs_group(
        sim,
        [AdversarySpec(kind="churn_storm", at=100.0, members=(0, 1), spacing=200.0)],
        n_members=3,
    )
    sim.run(until=150.0)
    assert group.member(0).primary_node.failed
    assert not group.member(1).primary_node.failed
    sim.run(until=350.0)
    assert group.member(1).primary_node.failed


def test_pair_strategies_rejected_on_newtop():
    sim = Simulator(seed=0)
    spec = ScenarioSpec(system="newtop", n_members=3)
    group = build_ordering_group(sim, spec)
    engine = AdversaryEngine(
        sim, group, (AdversarySpec(kind="equivocate", member=0),)
    )
    with pytest.raises(AdversaryWiringError):
        engine.install()


def test_churn_storm_works_on_newtop():
    sim = Simulator(seed=0)
    spec = ScenarioSpec(system="newtop", n_members=3)
    group = build_ordering_group(sim, spec)
    AdversaryEngine(
        sim, group, (AdversarySpec(kind="churn_storm", at=50.0, members=(2,)),)
    ).install()
    sim.run(until=100.0)
    assert group.nsos[group.member_ids[2]].node.failed
