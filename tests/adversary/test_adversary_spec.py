"""Validation and serialisation of the declarative adversary layer."""

import pytest

from repro.adversary import (
    PRESETS,
    AdversarySpec,
    both,
    intermittent,
    seq,
)
from repro.adversary.spec import FLAG_STRATEGIES, STRATEGY_KINDS
from repro.experiments import ScenarioSpec


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        AdversarySpec(kind="meteor", member=0)


def test_leaf_strategies_need_a_member():
    for kind in tuple(FLAG_STRATEGIES) + ("delay_skew", "spurious_signal"):
        with pytest.raises(ValueError):
            AdversarySpec(kind=kind)


def test_negative_activation_rejected():
    with pytest.raises(ValueError):
        AdversarySpec(kind="mute", member=0, at=-1.0)


def test_until_must_follow_at():
    with pytest.raises(ValueError):
        AdversarySpec(kind="mute", member=0, at=100.0, until=50.0)


def test_combinator_needs_children():
    with pytest.raises(ValueError):
        AdversarySpec(kind="both")


def test_leaf_takes_no_children():
    child = AdversarySpec(kind="mute", member=0)
    with pytest.raises(ValueError):
        AdversarySpec(kind="mute", member=0, children=(child,))


def test_churn_storm_needs_members():
    with pytest.raises(ValueError):
        AdversarySpec(kind="churn_storm")
    AdversarySpec(kind="churn_storm", members=(1, 2))  # fine


def test_delay_skew_needs_positive_extra():
    with pytest.raises(ValueError):
        AdversarySpec(kind="delay_skew", member=0, extra_ms=0.0)


def test_intermittent_validations():
    child = AdversarySpec(kind="mute", member=0)
    # needs until, a sane period and duty, and a toggleable child
    with pytest.raises(ValueError):
        AdversarySpec(kind="intermittent", at=0.0, period=10.0, children=(child,))
    with pytest.raises(ValueError):
        intermittent(child, at=0.0, until=100.0, period=500.0)
    with pytest.raises(ValueError):
        intermittent(child, at=0.0, until=100.0, period=50.0, duty=1.5)
    with pytest.raises(ValueError):
        intermittent(
            AdversarySpec(kind="spurious_signal", member=0),
            at=0.0, until=100.0, period=50.0,
        )
    intermittent(child, at=0.0, until=100.0, period=50.0)  # fine


def test_seq_children_need_bounded_windows():
    unbounded = AdversarySpec(kind="mute", member=0)
    with pytest.raises(ValueError):
        seq(unbounded)
    # one-shot and windowed children are fine
    seq(
        AdversarySpec(kind="mute", member=0, until=100.0),
        AdversarySpec(kind="spurious_signal", member=1),
        AdversarySpec(kind="churn_storm", members=(2,), spacing=0.0),
    )


# ----------------------------------------------------------------------
# structure helpers
# ----------------------------------------------------------------------
def test_duration_per_kind():
    assert AdversarySpec(kind="spurious_signal", member=0).duration() == 0.0
    assert AdversarySpec(kind="mute", member=0).duration() is None
    assert AdversarySpec(kind="mute", member=0, at=10.0, until=60.0).duration() == 50.0
    storm = AdversarySpec(kind="churn_storm", members=(1, 2, 3), spacing=100.0)
    assert storm.duration() == 200.0


def test_leaves_flatten_combinators():
    tree = both(
        seq(
            AdversarySpec(kind="scramble_burst", member=0, until=100.0),
            AdversarySpec(kind="corrupt", member=1, until=100.0),
        ),
        AdversarySpec(kind="spurious_signal", member=2),
    )
    kinds = sorted(leaf.kind for leaf in tree.leaves())
    assert kinds == ["corrupt", "scramble_burst", "spurious_signal"]
    assert tree.flag_members() == {0, 1}


def test_roundtrip_nested():
    tree = intermittent(
        AdversarySpec(kind="delay_skew", member=1, extra_ms=25.0),
        at=100.0,
        until=500.0,
        period=100.0,
        duty=0.25,
    )
    assert AdversarySpec.from_dict(tree.to_dict()) == tree


def test_flag_strategies_name_real_faultplan_flags():
    from repro.core.faults import FaultPlan

    known = set(FaultPlan().flag_names())
    for kind, flags in FLAG_STRATEGIES.items():
        assert set(flags) <= known, f"{kind} drives unknown FaultPlan flags"


def test_presets_cover_every_single_pair_strategy():
    for kind in STRATEGY_KINDS:
        if kind == "churn_storm":
            continue  # multi-member, no single canonical target
        assert kind in PRESETS
        assert PRESETS[kind].kind == kind


# ----------------------------------------------------------------------
# ScenarioSpec integration
# ----------------------------------------------------------------------
def test_scenario_spec_roundtrip_with_adversaries():
    spec = ScenarioSpec(
        adversaries=(
            AdversarySpec(kind="equivocate", at=300.0, member=0),
            seq(
                AdversarySpec(kind="mute", member=1, until=100.0),
                AdversarySpec(kind="spurious_signal", member=2),
                at=500.0,
            ),
        )
    )
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_byzantine_members_includes_adversary_targets():
    spec = ScenarioSpec(
        n_members=6,
        adversaries=(
            both(
                AdversarySpec(kind="equivocate", member=3),
                AdversarySpec(kind="tamper_signature", member=1),
            ),
            # non-FaultPlan strategies do not force a ByzantineFso build
            AdversarySpec(kind="spurious_signal", member=5),
            AdversarySpec(kind="churn_storm", members=(4,)),
        ),
    )
    assert spec.byzantine_members == (1, 3)
