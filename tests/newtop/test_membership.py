"""Tests for partitionable membership and the ping suspector.

These cover the behaviours the paper contrasts with FS-NewTOP:
timeout-based suspicion works, but false suspicions split groups even
when nobody failed (experiment E5's baseline half).
"""

import pytest

from repro.net import SpikeDelay, UniformDelay
from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator

from tests.newtop.conftest import delivered_values


def _run_group(n, seed=0, suspector_kwargs=None, delay=None, until=20_000):
    sim = Simulator(seed=seed)
    kwargs = dict(suspectors=True)
    if suspector_kwargs:
        kwargs.update(suspector_kwargs)
    group = CrashTolerantGroup(sim, n_members=n, delay=delay, **kwargs)
    return sim, group


def test_crash_detected_and_view_installed():
    sim, group = _run_group(3)
    group.crash(2)
    sim.run(until=30_000)
    for member in range(2):
        views = group.views(member)
        assert views, f"member {member} installed no view"
        final = views[-1]
        assert "member-2" not in final.members
        assert final.members == ("member-0", "member-1")


def test_survivors_agree_on_view():
    sim, group = _run_group(5, seed=3)
    group.crash(4)
    sim.run(until=30_000)
    finals = [group.views(m)[-1] for m in range(4)]
    assert all(v == finals[0] for v in finals)
    assert finals[0].members == ("member-0", "member-1", "member-2", "member-3")


def test_no_failures_no_view_changes():
    """On a calm LAN with generous timeouts there are no suspicions and
    the group never splits -- the paper's benchmark setup."""
    sim, group = _run_group(4)
    for i in range(5):
        group.multicast(i % 4, ServiceType.SYMMETRIC_TOTAL.value, i)
    sim.run(until=30_000)
    for member in range(4):
        assert group.views(member) == []
        assert len(delivered_values(group, member)) == 5


def test_total_order_continues_after_crash_view():
    sim, group = _run_group(3)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "before")
    sim.run(until=5_000)
    group.crash(2)
    sim.run(until=40_000)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "after")
    sim.run(until=80_000)
    for member in range(2):
        assert delivered_values(group, member) == ["before", "after"]


def test_partition_splits_group_both_sides():
    """A network partition makes each side suspect the other and install
    disjoint views -- partitionable semantics, no merging."""
    sim, group = _run_group(4, seed=2)
    sim.run(until=2_000)
    group.network.partition(["member-0", "member-1"], ["member-2", "member-3"])
    sim.run(until=60_000)
    left = [group.views(m)[-1].members for m in (0, 1)]
    right = [group.views(m)[-1].members for m in (2, 3)]
    assert left == [("member-0", "member-1")] * 2
    assert right == [("member-2", "member-3")] * 2


def test_false_suspicion_splits_group_without_failure():
    """The core weakness of timeout-based suspicion: delay spikes larger
    than the timeout split the group although every member is correct."""
    spiky = SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.35, spike_ms=400.0)
    sim = Simulator(seed=11)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        delay=spiky,
        suspectors=True,
        suspector_interval=100.0,
        suspector_timeout=50.0,
        suspector_max_misses=1,
    )
    sim.run(until=120_000)
    views = [group.views(m) for m in range(3)]
    assert any(views), "expected at least one false suspicion to split the group"
    # Nobody crashed, yet somebody's view shrank.
    shrunk = [v[-1].members for v in views if v]
    assert all(len(members) < 3 for members in shrunk)


def test_generous_timeouts_prevent_false_suspicion():
    """Same spiky network, but timeouts larger than the worst spike:
    no suspicion, no split (the paper's experimental configuration)."""
    spiky = SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.35, spike_ms=400.0)
    sim = Simulator(seed=11)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        delay=spiky,
        suspectors=True,
        suspector_interval=2_000.0,
        suspector_timeout=1_500.0,
        suspector_max_misses=3,
    )
    sim.run(until=120_000)
    assert all(group.views(m) == [] for m in range(3))


def test_suspector_validation():
    from repro.newtop import PingSuspector

    with pytest.raises(ValueError):
        PingSuspector(Simulator(), "m", "g", interval=100.0, timeout=100.0)


def test_multigroup_membership():
    """One member in two groups: suspicion in one group must not affect
    the other (groups are independent)."""
    sim = Simulator(seed=4)
    group = CrashTolerantGroup(sim, n_members=3)
    # Manually join member-0 and member-1 into a second group.
    from repro.newtop.views import View

    second = View(group="other", view_id=1, members=("member-0", "member-1"))
    refs = {m: group.nsos[m].gc_ref for m in ("member-0", "member-1")}
    for m in ("member-0", "member-1"):
        group.nsos[m].join_group("other", second, dict(refs))
    group.nsos["member-0"].multicast("other", ServiceType.SYMMETRIC_TOTAL.value, "hi")
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "main")
    sim.run_until_idle()
    other_deliveries = [
        m for m in group.deliveries(1) if m.group == "other"
    ]
    main_deliveries = [m for m in group.deliveries(1) if m.group == "group"]
    assert [m.value for m in other_deliveries] == ["hi"]
    assert [m.value for m in main_deliveries] == ["main"]
