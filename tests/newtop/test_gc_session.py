"""Unit tests for GC session routing and service dispatch edges."""

import pytest

from repro.corba.anytype import Any as CorbaAny
from repro.newtop import CrashTolerantGroup, ServiceType
from repro.newtop.gc.messages import UnreliableMsg
from repro.sim import Simulator


def _session(n=2, seed=0):
    sim = Simulator(seed=seed)
    group = CrashTolerantGroup(sim, n_members=n)
    return sim, group, group.nso(0).gc.session("group")


def test_unknown_service_rejected():
    sim, group, session = _session()
    with pytest.raises(ValueError):
        session.submit("teleport", CorbaAny.wrap("x"))


def test_unroutable_message_rejected():
    sim, group, session = _session()
    with pytest.raises(TypeError):
        session.route(object())


def test_unknown_group_rejected():
    sim, group, __ = _session()
    with pytest.raises(KeyError):
        group.nso(0).gc.session("no-such-group")


def test_groups_listing():
    sim, group, __ = _session()
    assert group.nso(0).gc.groups() == ["group"]


def test_double_join_rejected():
    sim, group, __ = _session()
    from repro.newtop.gc.service import GroupConfig
    from repro.newtop.views import View

    with pytest.raises(ValueError):
        group.nso(0).gc.join_group(
            "group",
            GroupConfig(
                initial_view=View("group", 1, ("member-0",)),
                gc_refs={},
                inv_ref=group.nso(0).inv_ref,
            ),
        )


def test_unknown_member_send_raises():
    sim, group, session = _session()
    with pytest.raises(KeyError):
        session._send_fn("member-99", UnreliableMsg("group", "member-0", CorbaAny.wrap(1)))


def test_session_pump_is_reentrancy_safe():
    """Inputs injected while another input is being processed are
    deferred, not nested."""
    sim, group, session = _session()
    order = []

    original = session.unreliable.on_msg

    def tracking(msg):
        order.append(("start", msg.payload.extract()))
        original(msg)
        order.append(("end", msg.payload.extract()))

    session.unreliable.on_msg = tracking
    m1 = UnreliableMsg("group", "member-1", CorbaAny.wrap(1))
    m2 = UnreliableMsg("group", "member-1", CorbaAny.wrap(2))

    # Route m2 from inside m1's handler: it must run after m1 finishes.
    def deliver_fn(group_name, sender, payload, service, meta):
        if payload.extract() == 1 and not any(e[1] == 2 for e in order):
            session.route(m2)

    session._deliver_fn = deliver_fn
    session.route(m1)
    assert order == [("start", 1), ("end", 1), ("start", 2), ("end", 2)]


def test_invocation_requires_bound_gc():
    from repro.newtop.invocation import InvocationService

    inv = InvocationService("loner")
    with pytest.raises(RuntimeError):
        inv.multicast("g", ServiceType.RELIABLE.value, "x")
