"""Tests for symmetric total order: agreement, totality, liveness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator

from tests.newtop.conftest import delivered_keys, delivered_values


def test_single_sender_all_deliver(make_group):
    sim, group = make_group(n=3)
    for i in range(5):
        group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, f"m{i}")
    sim.run_until_idle()
    for member in range(3):
        assert delivered_values(group, member) == [f"m{i}" for i in range(5)]


def test_sender_also_delivers_own_messages(make_group):
    sim, group = make_group(n=2)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "hello")
    sim.run_until_idle()
    assert delivered_values(group, 0) == ["hello"]


def test_concurrent_senders_same_total_order(make_group):
    sim, group = make_group(n=4, seed=7)
    for i in range(8):
        sender = i % 4
        group.multicast(sender, ServiceType.SYMMETRIC_TOTAL.value, f"m{i}")
    sim.run_until_idle()
    sequences = [delivered_keys(group, m) for m in range(4)]
    assert all(len(seq) == 8 for seq in sequences)
    assert sequences.count(sequences[0]) == 4, "members disagreed on the total order"


def test_total_order_under_random_delays():
    """The total order must hold regardless of network timing."""
    for seed in range(5):
        sim = Simulator(seed=seed)
        group = CrashTolerantGroup(sim, n_members=5)
        for i in range(10):
            group.multicast(i % 5, ServiceType.SYMMETRIC_TOTAL.value, i)
        sim.run_until_idle()
        sequences = [delivered_keys(group, m) for m in range(5)]
        assert all(len(seq) == 10 for seq in sequences), f"seed {seed}: lost messages"
        assert sequences.count(sequences[0]) == 5, f"seed {seed}: order disagreement"


def test_two_member_group(make_group):
    sim, group = make_group(n=2)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "from-0")
    group.multicast(1, ServiceType.SYMMETRIC_TOTAL.value, "from-1")
    sim.run_until_idle()
    assert delivered_keys(group, 0) == delivered_keys(group, 1)
    assert len(delivered_keys(group, 0)) == 2


def test_staggered_sends_deliver_in_send_order(make_group):
    """Widely spaced multicasts from one sender deliver FIFO."""
    sim, group = make_group(n=3)
    for i in range(4):
        sim.schedule(
            i * 500.0,
            lambda i=i: group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, i),
        )
    sim.run_until_idle()
    assert delivered_values(group, 2) == [0, 1, 2, 3]


def test_message_intensity_is_quadratic(make_group):
    """Symmetric ordering of one multicast costs O(n^2) network messages
    -- the property the paper's evaluation leans on."""
    costs = {}
    for n in (4, 8):
        sim, group = make_group(n=n)
        group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "x")
        sim.run_until_idle()
        costs[n] = group.network.stats.messages_sent
    # Doubling the group should roughly quadruple the messages.
    assert costs[8] > 3.0 * costs[4]


def test_delivery_latency_reported_in_meta(make_group):
    sim, group = make_group(n=3)
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, "x")
    sim.run_until_idle()
    msg = group.deliveries(1)[0]
    assert msg.meta["seq"] == 1
    assert msg.meta["view_id"] == 1
    assert msg.delivered_at > 0
    assert msg.service == ServiceType.SYMMETRIC_TOTAL.value


def test_payload_roundtrips_through_any(make_group):
    sim, group = make_group(n=2)
    value = {"bid": 17, "items": [1, 2, 3], "who": "alice"}
    group.multicast(0, ServiceType.SYMMETRIC_TOTAL.value, value)
    sim.run_until_idle()
    assert delivered_values(group, 1) == [value]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=5),
    sends=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_agreement_property(seed, n, sends):
    """Property: for arbitrary send patterns and network timing, every
    member delivers the same sequence, containing every multicast."""
    sim = Simulator(seed=seed)
    group = CrashTolerantGroup(sim, n_members=n)
    expected = 0
    for i, sender in enumerate(sends):
        if sender < n:
            group.multicast(sender, ServiceType.SYMMETRIC_TOTAL.value, i)
            expected += 1
    sim.run_until_idle(max_events=2_000_000)
    sequences = [delivered_keys(group, m) for m in range(n)]
    assert all(len(seq) == expected for seq in sequences)
    assert sequences.count(sequences[0]) == n
