"""Tests for asymmetric (sequencer) total order."""

from repro.newtop import ServiceType

from tests.newtop.conftest import delivered_keys, delivered_values


def test_all_members_deliver_same_order(make_group):
    sim, group = make_group(n=4, seed=3)
    for i in range(12):
        group.multicast(i % 4, ServiceType.ASYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    sequences = [delivered_keys(group, m) for m in range(4)]
    assert all(len(seq) == 12 for seq in sequences)
    assert sequences.count(sequences[0]) == 4


def test_order_numbers_are_consecutive(make_group):
    sim, group = make_group(n=3)
    for i in range(6):
        group.multicast(i % 3, ServiceType.ASYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    orders = [m.meta["order"] for m in group.deliveries(0)]
    assert orders == list(range(1, 7))


def test_sequencer_is_coordinator(make_group):
    """member-0 (lowest id) sequences; its own sends need no extra hop,
    so with only member-0 sending, message count is O(n) per multicast."""
    sim, group = make_group(n=5)
    group.multicast(0, ServiceType.ASYMMETRIC_TOTAL.value, "x")
    sim.run_until_idle()
    # one ORDER broadcast to 4 remote members = 4 network messages
    assert group.network.stats.messages_sent == 4


def test_cheaper_than_symmetric(make_group):
    sim_a, group_a = make_group(n=6)
    group_a.multicast(2, ServiceType.ASYMMETRIC_TOTAL.value, "x")
    sim_a.run_until_idle()
    asymmetric_msgs = group_a.network.stats.messages_sent

    sim_s, group_s = make_group(n=6)
    group_s.multicast(2, ServiceType.SYMMETRIC_TOTAL.value, "x")
    sim_s.run_until_idle()
    symmetric_msgs = group_s.network.stats.messages_sent

    assert asymmetric_msgs < symmetric_msgs / 3


def test_fifo_from_single_sender(make_group):
    sim, group = make_group(n=3, seed=11)
    for i in range(10):
        group.multicast(1, ServiceType.ASYMMETRIC_TOTAL.value, i)
    sim.run_until_idle()
    for member in range(3):
        assert delivered_values(group, member) == list(range(10))


def test_duplicate_order_msg_ignored(make_group):
    """Routing the same OrderMsg twice must not double-deliver."""
    sim, group = make_group(n=2)
    group.multicast(0, ServiceType.ASYMMETRIC_TOTAL.value, "x")
    sim.run_until_idle()
    session = group.nso(1).gc.session("group")
    delivered_before = len(group.deliveries(1))
    # Replay: craft the same order message the member already handled.
    from repro.corba.anytype import Any as CorbaAny
    from repro.newtop.gc.messages import DataMsg, OrderMsg

    replay = OrderMsg(
        group="group",
        view_id=1,
        order_seq=1,
        data=DataMsg(
            group="group",
            view_id=1,
            sender="member-0",
            seq=1,
            lamport=0,
            service=ServiceType.ASYMMETRIC_TOTAL.value,
            payload=CorbaAny.wrap("x"),
        ),
    )
    session.route(replay)
    sim.run_until_idle()
    assert len(group.deliveries(1)) == delivered_before
