"""Asymmetric total order across a view change: the sequencer role moves
with the view coordinator."""

from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator


def test_sequencer_failover_after_coordinator_crash():
    sim = Simulator(seed=4)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        suspectors=True,
        suspector_interval=200.0,
        suspector_timeout=100.0,
        suspector_max_misses=2,
    )
    # member-0 is the coordinator/sequencer of view 1.
    group.multicast(1, ServiceType.ASYMMETRIC_TOTAL.value, "before")
    sim.run(until=3_000)
    for m in range(3):
        assert [d.value for d in group.deliveries(m)] == ["before"]

    group.crash(0)
    sim.run(until=40_000)
    for m in (1, 2):
        views = group.views(m)
        assert views and views[-1].members == ("member-1", "member-2")
        assert views[-1].coordinator() == "member-1"

    # New multicasts sequence through the new coordinator.
    group.multicast(2, ServiceType.ASYMMETRIC_TOTAL.value, "after")
    sim.run(until=80_000)
    for m in (1, 2):
        values = [d.value for d in group.deliveries(m)]
        assert values == ["before", "after"], f"member-{m}: {values}"


def test_order_restarts_per_view():
    sim = Simulator(seed=4)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        suspectors=True,
        suspector_interval=200.0,
        suspector_timeout=100.0,
        suspector_max_misses=2,
    )
    group.multicast(1, ServiceType.ASYMMETRIC_TOTAL.value, "v1-msg")
    sim.run(until=3_000)
    group.crash(0)
    sim.run(until=40_000)
    group.multicast(1, ServiceType.ASYMMETRIC_TOTAL.value, "v2-msg")
    sim.run(until=80_000)
    orders = [d.meta["order"] for d in group.deliveries(1)]
    views_of = [d.meta["view_id"] for d in group.deliveries(1)]
    assert orders == [1, 1]
    assert views_of == [1, 2]
