"""Unit tests for GC protocol engines against a fake context.

The integration tests drive the engines through the full ORB/network
stack; these pin down engine-local behaviour (stability conditions,
hold-back rules) with surgical inputs.
"""

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.messages import AckMsg, DataMsg
from repro.newtop.gc.symmetric import SymmetricOrder
from repro.newtop.services import ServiceType
from repro.newtop.views import View


class FakeContext:
    def __init__(self, member_id, members):
        self.member_id = member_id
        self._view = View("g", 1, tuple(members))
        self.sent = []
        self.delivered = []

    def view(self):
        return self._view

    def send(self, member, msg):
        if member == self.member_id:
            raise AssertionError("unit tests route self-sends explicitly")
        self.sent.append((member, msg))

    def broadcast(self, msg, include_self=True):
        for member in self._view.members:
            if member == self.member_id:
                continue
            self.sent.append((member, msg))

    def deliver(self, sender, payload, service, meta):
        self.delivered.append((sender, payload.extract(), meta))

    def trace(self, event, **details):
        pass


def _data(sender, seq, lamport, group="g", view_id=1):
    return DataMsg(
        group=group,
        view_id=view_id,
        sender=sender,
        seq=seq,
        lamport=lamport,
        service=ServiceType.SYMMETRIC_TOTAL.value,
        payload=CorbaAny.wrap(f"{sender}:{seq}"),
    )


def _ack(acker, data, lamport):
    return AckMsg(
        group="g",
        view_id=1,
        acker=acker,
        data_sender=data.sender,
        data_seq=data.seq,
        lamport=lamport,
    )


def test_message_held_until_all_members_heard_from():
    ctx = FakeContext("a", ["a", "b", "c"])
    engine = SymmetricOrder(ctx, "g")
    msg = _data("b", 1, 5)
    engine.on_data(msg)
    # Own clock jumped past 5; b and c have not been heard past ts=5.
    assert ctx.delivered == []
    engine.on_ack(_ack("b", msg, 6))  # the sender's own ack
    assert ctx.delivered == []  # c still unheard
    engine.on_ack(_ack("c", msg, 7))
    assert [d[0] for d in ctx.delivered] == ["b"]


def test_equal_timestamp_tiebreak_by_sender():
    ctx = FakeContext("z", ["x", "y", "z"])
    engine = SymmetricOrder(ctx, "g")
    from_y = _data("y", 1, 5)
    from_x = _data("x", 1, 5)
    engine.on_data(from_y)
    engine.on_data(from_x)
    engine.on_ack(_ack("x", from_y, 9))
    engine.on_ack(_ack("y", from_x, 9))
    senders = [d[0] for d in ctx.delivered]
    assert senders == ["x", "y"], "equal timestamps must break ties by sender id"


def test_stale_member_blocks_delivery_until_view_change():
    """A member nobody hears from stalls delivery; removing it from the
    view (membership's job) releases the queue."""
    ctx = FakeContext("a", ["a", "b", "slow"])
    engine = SymmetricOrder(ctx, "g")
    msg = _data("b", 1, 5)
    engine.on_data(msg)
    engine.on_ack(_ack("b", msg, 8))
    assert ctx.delivered == []
    ctx._view = View("g", 2, ("a", "b"))
    engine.on_view_change(ctx._view)
    assert [d[0] for d in ctx.delivered] == ["b"]


def test_duplicate_data_buffered_once():
    ctx = FakeContext("a", ["a", "b"])
    engine = SymmetricOrder(ctx, "g")
    msg = _data("b", 1, 3)
    engine.on_data(msg)
    engine.on_data(msg)
    engine.on_ack(_ack("b", msg, 9))
    assert len(ctx.delivered) == 1


def test_ack_broadcast_on_every_data():
    ctx = FakeContext("a", ["a", "b", "c"])
    engine = SymmetricOrder(ctx, "g")
    engine.on_data(_data("b", 1, 3))
    acks = [msg for __, msg in ctx.sent if isinstance(msg, AckMsg)]
    # Acks go to every *other* member (self-ack is internal).
    assert len(acks) == 2


def test_lamport_monotonicity():
    ctx = FakeContext("a", ["a", "b"])
    engine = SymmetricOrder(ctx, "g")
    engine.on_data(_data("b", 1, 100))
    assert engine.lamport > 100
    before = engine.lamport
    engine.submit(CorbaAny.wrap("mine"))
    assert engine.lamport == before + 1
