"""Shared helpers for NewTOP tests."""

import pytest

from repro.newtop import CrashTolerantGroup
from repro.sim import Simulator


@pytest.fixture
def make_group():
    """Factory for wired crash-tolerant groups."""

    def build(n=3, seed=0, **kwargs):
        sim = Simulator(seed=seed)
        group = CrashTolerantGroup(sim, n_members=n, **kwargs)
        return sim, group

    return build


def delivered_values(group, member):
    return [m.value for m in group.deliveries(member)]


def delivered_keys(group, member):
    """(sender, value) pairs in delivery order -- the total-order check."""
    return [(m.sender, m.value) for m in group.deliveries(member)]
