"""Tests for the View value type."""

import pytest

from repro.newtop import View


def test_members_sorted():
    view = View("g", 1, ("b", "a", "c"))
    assert view.members == ("a", "b", "c")


def test_contains_and_size():
    view = View("g", 1, ("a", "b"))
    assert "a" in view
    assert "z" not in view
    assert view.size == 2


def test_without():
    view = View("g", 3, ("a", "b", "c"))
    successor = view.without("b")
    assert successor.view_id == 4
    assert successor.members == ("a", "c")
    assert successor.group == "g"


def test_coordinator_is_lowest_member():
    assert View("g", 1, ("c", "a", "b")).coordinator() == "a"


def test_empty_view_has_no_coordinator():
    with pytest.raises(ValueError):
        View("g", 1, ()).coordinator()


def test_views_compare_across_members():
    assert View("g", 2, ("b", "a")) == View("g", 2, ("a", "b"))


def test_view_is_canonical_encodable():
    from repro.crypto import canonical_encode

    assert canonical_encode(View("g", 1, ("a", "b"))) == canonical_encode(
        View("g", 1, ("b", "a"))
    )
