"""Tests for reliable FIFO multicast and NACK recovery."""

from repro.newtop import CrashTolerantGroup, ServiceType
from repro.newtop.gc.messages import ReliableMsg
from repro.sim import Simulator

from tests.newtop.conftest import delivered_values


def test_basic_delivery(make_group):
    sim, group = make_group(n=3)
    for i in range(5):
        group.multicast(0, ServiceType.RELIABLE.value, i)
    sim.run_until_idle()
    for member in range(3):
        assert delivered_values(group, member) == list(range(5))


def test_fifo_per_sender(make_group):
    sim, group = make_group(n=3, seed=9)
    for i in range(10):
        group.multicast(0, ServiceType.RELIABLE.value, ("a", i))
        group.multicast(1, ServiceType.RELIABLE.value, ("b", i))
    sim.run_until_idle()
    for member in range(3):
        values = delivered_values(group, member)
        a_seq = [i for tag, i in values if tag == "a"]
        b_seq = [i for tag, i in values if tag == "b"]
        assert a_seq == list(range(10))
        assert b_seq == list(range(10))


def test_nack_recovers_dropped_message():
    """Drop the first transmission of seq=2 to member-1; the gap must be
    detected when seq=3 arrives and repaired by retransmission."""
    sim = Simulator(seed=1)
    group = CrashTolerantGroup(sim, n_members=2)
    dropped = []

    def drop_once(envelope):
        payload = envelope.payload
        args = getattr(payload, "args", ())
        for arg in args:
            if isinstance(arg, ReliableMsg) and arg.seq == 2 and not dropped:
                if envelope.dst == "member-1":
                    dropped.append(True)
                    return False
        return True

    group.network.set_fault_filter(drop_once)
    for i in range(1, 5):
        group.multicast(0, ServiceType.RELIABLE.value, i)
    sim.run_until_idle()
    assert dropped, "fault filter never matched"
    assert delivered_values(group, 1) == [1, 2, 3, 4]
    session = group.nso(1).gc.session("group")
    assert session.reliable.nacks_sent >= 1
    sender_session = group.nso(0).gc.session("group")
    assert sender_session.reliable.retransmissions >= 1


def test_duplicate_suppression(make_group):
    sim, group = make_group(n=2)
    group.multicast(0, ServiceType.RELIABLE.value, "once")
    sim.run_until_idle()
    session = group.nso(1).gc.session("group")
    # Replay the logged message straight into the session.
    logged = group.nso(0).gc.session("group").reliable._log[1]
    session.route(logged)
    sim.run_until_idle()
    assert delivered_values(group, 1) == ["once"]


def test_unreliable_delivers_on_reliable_network(make_group):
    sim, group = make_group(n=3)
    group.multicast(0, ServiceType.UNRELIABLE.value, "blast")
    sim.run_until_idle()
    for member in range(3):
        assert delivered_values(group, member) == ["blast"]


def test_unreliable_loses_without_recovery(make_group):
    sim, group = make_group(n=2)
    group.network.set_drop_rate(1.0)
    group.multicast(0, ServiceType.UNRELIABLE.value, "void")
    sim.run_until_idle()
    # Self-delivery is local; the remote member never sees it and no
    # recovery traffic is generated.
    assert delivered_values(group, 0) == ["void"]
    assert delivered_values(group, 1) == []
