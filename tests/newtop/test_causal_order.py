"""Tests for causal order multicast."""

from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator

from tests.newtop.conftest import delivered_values


def test_single_sender_fifo(make_group):
    sim, group = make_group(n=3)
    for i in range(6):
        group.multicast(0, ServiceType.CAUSAL.value, i)
    sim.run_until_idle()
    for member in range(3):
        assert delivered_values(group, member) == list(range(6))


def test_own_messages_deliver_immediately(make_group):
    sim, group = make_group(n=3)
    group.multicast(0, ServiceType.CAUSAL.value, "mine")
    # Delivery to self happens on submission processing, before any
    # network round trip completes.
    sim.run_until_idle()
    assert delivered_values(group, 0) == ["mine"]


def test_causal_reply_ordered_after_cause():
    """A message sent *in reaction to* a delivery must never be delivered
    before its cause, at any member, under any timing."""
    for seed in range(8):
        sim = Simulator(seed=seed)
        group = CrashTolerantGroup(sim, n_members=3)

        # member-1 replies as soon as it sees member-0's question.
        def reply_once(msg, replied=[]):
            if msg.value == "question" and msg.sender == "member-0" and not replied:
                replied.append(True)
                group.multicast(1, ServiceType.CAUSAL.value, "answer")

        group.nso(1).invocation.on_deliver = reply_once
        group.multicast(0, ServiceType.CAUSAL.value, "question")
        sim.run_until_idle()

        for member in range(3):
            values = delivered_values(group, member)
            assert values.index("question") < values.index("answer"), (
                f"seed {seed}, member {member}: causality violated: {values}"
            )


def test_concurrent_messages_all_delivered(make_group):
    sim, group = make_group(n=4, seed=5)
    for i in range(8):
        group.multicast(i % 4, ServiceType.CAUSAL.value, i)
    sim.run_until_idle()
    for member in range(4):
        assert sorted(delivered_values(group, member)) == list(range(8))


def test_vclock_meta_present(make_group):
    sim, group = make_group(n=2)
    group.multicast(0, ServiceType.CAUSAL.value, "x")
    sim.run_until_idle()
    msg = group.deliveries(1)[0]
    assert msg.meta["vclock"] == {"member-0": 1}


def test_hold_back_until_gap_filled(make_group):
    """Directly exercise the hold-back queue: deliver m2 (which causally
    follows m1) before m1 arrives."""
    from repro.corba.anytype import Any as CorbaAny
    from repro.newtop.gc.messages import CausalMsg

    sim, group = make_group(n=2)
    session = group.nso(1).gc.session("group")
    m2 = CausalMsg(
        group="group",
        sender="member-0",
        seq=2,
        vclock=(("member-0", 2),),
        payload=CorbaAny.wrap("second"),
    )
    m1 = CausalMsg(
        group="group",
        sender="member-0",
        seq=1,
        vclock=(("member-0", 1),),
        payload=CorbaAny.wrap("first"),
    )
    session.route(m2)
    assert delivered_values(group, 1) == []
    session.route(m1)
    sim.run_until_idle()
    assert delivered_values(group, 1) == ["first", "second"]
