"""Quickstart: turn a deterministic service into a fail-signal process.

Builds the paper's core construction in ~60 lines of user code: a
deterministic counter servant replicated onto two nodes behind
Fail-Signal wrapper Objects.  In failure-free operation the pair is
observationally one correct server; when one node is crashed
mid-run, the environment receives the pair's unique, double-signed
fail-signal instead of silence or garbage.

Run:  python examples/quickstart.py
"""

from repro.corba import Node, ObjectRef, Servant
from repro.core import FsEnvironment, FsoRole
from repro.net import ConstantDelay, Network
from repro.sim import Simulator

# The logical address the replicas send their results to.  Routing maps
# it to the client's verifying inbox.
RESULTS = ObjectRef(node="logical", key="results")


class CounterService(Servant):
    """The service to protect: deterministic, input-driven (R1)."""

    def __init__(self):
        self.total = 0

    def add(self, amount):
        self.total += amount
        self.orb.oneway(RESULTS, "result", self.total)


class ResultsSink(Servant):
    """The client-side consumer of (verified, de-duplicated) outputs."""

    def __init__(self):
        self.values = []

    def result(self, value):
        self.values.append(value)
        print(f"  [client] t={self.orb.sim.now:8.2f}ms  verified result: {value}")


def main():
    sim = Simulator(seed=42)
    net = Network(sim, default_delay=ConstantDelay(1.0))

    # Three machines: the FS pair plus the client.
    node_a = Node(sim, "server-a", net)
    node_b = Node(sim, "server-b", net)
    client = Node(sim, "client", net)

    # One environment = shared keystore + signer registry + routing.
    env = FsEnvironment(sim)
    counter = env.make_fail_signal(
        "counter",
        leader_node=node_a,
        follower_node=node_b,
        leader_replica=CounterService(),
        follower_replica=CounterService(),
    )

    # Client side: a verifying inbox unwraps double-signed outputs.
    sink = ResultsSink()
    sink_ref = client.activate("results", sink)
    inbox = env.make_inbox(client, "inbox")
    inbox.local_rewrites["results"] = sink_ref
    inbox.on_fail_signal = lambda fs_id: print(
        f"  [client] t={sim.now:8.2f}ms  FAIL-SIGNAL from {fs_id!r} "
        "(source is certainly faulty; no timeout was needed)"
    )
    env.routes.set_route("results", [inbox.ref])
    counter.set_signal_destinations([inbox.ref])

    print("== failure-free operation ==")
    for i, amount in enumerate((5, 10, 20), start=1):
        counter.submit(client, "add", (amount,), input_id=("demo", i))
    sim.run_until_idle()
    assert sink.values == [5, 15, 35]

    print("\n== crashing the follower node, then asking for more work ==")
    counter.crash_node(FsoRole.FOLLOWER)
    counter.submit(client, "add", (100,), input_id=("demo", 4))
    sim.run_until_idle()

    assert counter.leader.signaled
    print(
        f"\nleader signalled (reason: {counter.leader.signal_reason}); "
        f"client saw {len(sink.values)} valid results and 1 fail-signal."
    )


if __name__ == "__main__":
    main()
