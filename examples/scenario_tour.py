"""Tour of the declarative scenario/campaign engine.

Three stops:

1. run one registered scenario point (a Byzantine member attacking an
   FS-NewTOP group mid-run) and watch the fail-signal convert it into
   a clean membership change;
2. run the PBFT head-to-head campaign -- the full grid, repeated, in
   parallel worker processes, persisted to JSONL;
3. aggregate the stored records the way ``python -m repro report``
   does, and check the paper's qualitative claims.

Run:  python examples/scenario_tour.py
"""

import os
import tempfile

from repro.analysis import aggregate_records
from repro.experiments import Campaign, ResultStore, get_scenario, run_scenario


def stop_one_byzantine_flood():
    print("== 1. byzantine_flood: corrupt outputs at t=300ms ==")
    scenario = get_scenario("byzantine_flood")
    point = scenario.sweep[0]  # corrupt_outputs
    result = run_scenario(scenario.spec_for("fs-newtop", point))
    m = result.metrics
    print(f"  fault plan: {point.label}")
    print(f"  fail-signals: {m['fail_signals']:.0f}  (the pair caught the attack)")
    print(f"  view changes: {m['view_changes']:.0f}  (survivors excluded the member)")
    print(f"  messages still fully ordered: {m['ordered']:.0f}")
    assert m["fail_signals"] > 0
    assert m["ordered"] > 0
    return m


def stop_two_campaign(store_path):
    print("\n== 2. pbft_head_to_head campaign: 2 repeats, 2 worker processes ==")
    scenario = get_scenario("pbft_head_to_head")
    campaign = Campaign(scenario, repeats=2)
    store = ResultStore(store_path)
    records = campaign.execute(jobs=2, store=store)
    print(f"  {len(records)} runs persisted to {store_path}")
    return scenario, store


def stop_three_report(scenario, store):
    print("\n== 3. aggregate the stored records ==")
    records = store.load()
    stats = aggregate_records(
        records, "view_changes", key=lambda r: (r.system, r.x_label)
    )
    for (system, network), s in sorted(stats.items()):
        print(f"  {system:<10} {network:<6} view churn mean={s.mean:.1f} (n={s.n})")
    # The paper's positioning: on the spiky net PBFT churns through view
    # changes; FS-NewTOP has no timeouts to fool.
    assert stats[("pbft", "spiky")].mean > 0
    assert stats[("fs-newtop", "spiky")].mean == 0
    ordered = aggregate_records(records, "ordered", key=lambda r: (r.system, r.x_label))
    assert ordered[("fs-newtop", "spiky")].mean == 6.0
    print("  FS-NewTOP ordered everything with zero churn; PBFT churned.")


def main():
    stop_one_byzantine_flood()
    with tempfile.TemporaryDirectory() as tmp:
        scenario, store = stop_two_campaign(os.path.join(tmp, "head_to_head.jsonl"))
        stop_three_report(scenario, store)
    print("\nScenario engine tour complete.")


if __name__ == "__main__":
    main()
