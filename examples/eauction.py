"""E-auction on FS-NewTOP: the paper's motivating application class.

Three auctioneer replicas form an FS-NewTOP group and sequence bids with
symmetric total order, so every replica closes the auction on the same
winner.  Mid-auction, one member's middleware turns Byzantine (its GC
replica corrupts outputs): the corruption never escapes -- the faulty
member's FS process fail-signals, the group reforms, and the survivors
finish the auction consistently.

Run:  python examples/eauction.py
"""

from repro.core import FsoRole
from repro.fsnewtop import ByzantineTolerantGroup
from repro.newtop import ServiceType
from repro.sim import Simulator


class AuctioneerReplica:
    """Application-level state machine fed by total-order delivery."""

    def __init__(self, name):
        self.name = name
        self.best_bid = 0
        self.best_bidder = None
        self.log = []

    def on_deliver(self, message):
        value = message.value
        if not isinstance(value, dict) or value.get("kind") != "bid":
            return
        self.log.append((value["bidder"], value["amount"]))
        if value["amount"] > self.best_bid:
            self.best_bid = value["amount"]
            self.best_bidder = value["bidder"]


def main():
    sim = Simulator(seed=7)
    group = ByzantineTolerantGroup(
        sim, n_members=3, collapsed=False, byzantine_members=[2]
    )

    auctioneers = {}
    for member_id in group.member_ids:
        replica = AuctioneerReplica(member_id)
        auctioneers[member_id] = replica
        group.members[member_id].invocation.on_deliver = replica.on_deliver

    bids = [
        ("alice", 100), ("bob", 120), ("alice", 150),
        ("carol", 160), ("bob", 180), ("carol", 210),
    ]
    print("== auction opens: bids arrive through symmetric total order ==")
    for i, (bidder, amount) in enumerate(bids[:3]):
        sim.schedule(
            i * 120.0,
            lambda b=bidder, a=amount, m=i % 3: group.multicast(
                m, ServiceType.SYMMETRIC_TOTAL.value,
                {"kind": "bid", "bidder": b, "amount": a},
            ),
        )
    sim.run_until_idle()

    print("\n== member-2's middleware node turns Byzantine mid-auction ==")
    group.byzantine_fso(2, FsoRole.FOLLOWER).go_byzantine(corrupt_outputs=True)
    for i, (bidder, amount) in enumerate(bids[3:]):
        sim.schedule(
            i * 120.0,
            lambda b=bidder, a=amount, m=i % 2: group.multicast(
                m, ServiceType.SYMMETRIC_TOTAL.value,
                {"kind": "bid", "bidder": b, "amount": a},
            ),
        )
    sim.run_until_idle()

    print(f"member-2 fail-signalled: {group.fs_process_of(2).signaled}")
    for m in (0, 1):
        views = group.views(m)
        if views:
            print(f"member-{m} installed view without the faulty member: {views[-1]}")

    print("\n== auction closes ==")
    survivors = ["member-0", "member-1"]
    for member_id in survivors:
        replica = auctioneers[member_id]
        print(
            f"  {member_id}: winner={replica.best_bidder!r} at {replica.best_bid} "
            f"({len(replica.log)} bids sequenced)"
        )
    winners = {auctioneers[m].best_bidder for m in survivors}
    logs = {tuple(auctioneers[m].log) for m in survivors}
    assert len(winners) == 1 and len(logs) == 1, "replicas diverged!"
    print("\nall surviving replicas agree on the bid sequence and the winner.")


if __name__ == "__main__":
    main()
