"""A tour of Byzantine failure modes against one fail-signal pair.

Each scenario wires a fresh FS process around a deterministic counter,
switches on one misbehaviour from the authenticated-Byzantine repertoire
(section 2's failure model), and reports what the environment observed.
The invariant on display: the environment only ever sees *correct
values* or the pair's *fail-signal* -- never a wrong value.

Run:  python examples/fault_injection_tour.py
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))

from core.conftest import FsRig  # reuse the test rig as a demo harness
from repro.core import ByzantineFso


SCENARIOS = [
    (
        "output corruption",
        "the faulty replica appends garbage to every output",
        dict(corrupt_outputs=True),
    ),
    (
        "silent comparator",
        "the faulty node stops forwarding its single-signed outputs",
        dict(drop_singles=True),
    ),
    (
        "signature forgery",
        "the faulty node forges its peer's signature on candidates (A5 says it cannot)",
        dict(forge_signature=True),
    ),
]


def run_scenario(title, description, fault_flags):
    rig = FsRig(follower_fso_class=ByzantineFso)
    print(f"-- {title}: {description}")
    rig.submit("add", 1)
    rig.run()
    rig.fs.follower.go_byzantine(**fault_flags)
    rig.submit("add", 2)
    rig.run()
    observed = rig.sink.values
    signal = rig.fail_signals
    print(f"   values seen by the environment: {observed}")
    print(f"   fail-signals received:          {signal}")
    correct_prefixes = ([], [1], [1, 3])
    assert observed in correct_prefixes, f"a wrong value escaped: {observed}"
    assert signal == ["counter"], "the fault went unreported"
    print("   => only correct values escaped, and the fault was signalled\n")


def run_scramble():
    print("-- ordering attack: a faulty *leader* processes inputs out of order")
    rig = FsRig(leader_fso_class=ByzantineFso)
    rig.fs.leader.go_byzantine(scramble_order=True)
    rig.submit("add", 1)
    rig.submit("add", 10)
    rig.run()
    print(f"   values seen by the environment: {rig.sink.values}")
    print(f"   fail-signals received:          {rig.fail_signals}")
    assert rig.fail_signals == ["counter"]
    assert all(v in (1, 11) for v in rig.sink.values)
    print("   => out-of-order processing surfaced as an output mismatch\n")


def run_fs2():
    print("-- fs2: a (healthy!) wrapper emits its fail-signal spontaneously")
    rig = FsRig()
    rig.fs.leader.inject_arbitrary_signal()
    rig.run()
    print(f"   fail-signals received:          {rig.fail_signals}")
    assert rig.fail_signals == ["counter"]
    print("   => receivers correctly treat the signaller as faulty; that is fs2\n")


def main():
    for title, description, flags in SCENARIOS:
        run_scenario(title, description, flags)
    run_scramble()
    run_fs2()
    print("tour complete: no corrupted value ever crossed the double-signature check.")


if __name__ == "__main__":
    main()
