"""A tour of Byzantine failure modes -- the declarative way.

Each stop overlays one :class:`repro.adversary.AdversarySpec` strategy
on a small FS-NewTOP group and runs it under the
:mod:`repro.invariants` oracles (exactly what ``repro audit`` does).
The invariant on display: the environment only ever sees *correct
values* or the pair's *fail-signal* -- never a wrong value -- and the
audit report proves it mechanically for every strategy.

The final stop drives one pair through the legacy hand-rolled API
(``ByzantineFso.go_byzantine``), which keeps working; prefer the
declarative ``AdversarySpec`` path for anything new, since only specs
compose (``seq``/``both``/``intermittent``), serialise, and plug into
the scenario registry and ``repro audit``.

Run:  python examples/fault_injection_tour.py
"""

import sys
import pathlib

from repro.adversary import AdversarySpec, seq
from repro.experiments import ScenarioSpec, audit_scenario

#: One small streaming group; every attack below strikes member 0 at
#: t=250ms while traffic is still flowing.
BASE = ScenarioSpec(
    system="fs-newtop",
    n_members=3,
    messages_per_member=8,
    interval=50.0,
    collapsed=False,
    settle_ms=10_000.0,
)

STRATEGIES = [
    (
        "equivocation / double-send",
        "the faulty Compare double-sends conflicting signed candidates",
        AdversarySpec(kind="equivocate", at=250.0, member=0),
    ),
    (
        "output corruption",
        "the faulty replica corrupts every output",
        AdversarySpec(kind="corrupt", at=250.0, member=0),
    ),
    (
        "selective mute",
        "the faulty Compare stops forwarding its signed candidates",
        AdversarySpec(kind="selective_mute", at=250.0, member=0),
    ),
    (
        "signature tampering",
        "the faulty node forges its peer's signature (A5 says it cannot)",
        AdversarySpec(kind="tamper_signature", at=250.0, member=0),
    ),
    (
        "stale replay",
        "the faulty Compare re-sends its first candidate forever",
        AdversarySpec(kind="replay", at=250.0, member=0),
    ),
    (
        "composed attack",
        "a scramble burst, then a mute, back-to-back (seq combinator)",
        seq(
            AdversarySpec(kind="scramble_burst", at=0.0, until=200.0, member=0),
            AdversarySpec(kind="mute", at=50.0, until=250.0, member=0),
            at=250.0,
        ),
    ),
]


def run_strategy(title, description, adversary):
    print(f"-- {title}: {description}")
    spec = BASE.replace(adversaries=(adversary,))
    run = audit_scenario(spec, scenario=f"tour/{title}")
    signals = int(run.result.metrics["fail_signals"])
    ordered = int(run.result.metrics["ordered"])
    print(f"   fail-signals: {signals}  fully-ordered messages: {ordered}")
    oracle_line = "  ".join(
        f"{v.oracle}={'ok' if v.ok else 'FAIL'}" for v in run.report.verdicts
    )
    print(f"   oracles: {oracle_line}")
    assert run.report.ok, run.report.render()
    assert signals >= 1, "the attack went unreported"
    print("   => converted into an authenticated fail-signal; every oracle holds\n")


def run_legacy_rig():
    # Deprecated path: poking FaultPlan flags by hand on a single pair.
    # Still supported for low-level experiments, but it bypasses the
    # scenario registry, the adversary combinators and `repro audit` --
    # use AdversarySpec for anything that should be reproducible.
    print("-- legacy API (deprecated): hand-rolled go_byzantine on a bare pair")
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))
    from core.conftest import FsRig  # reuse the test rig as a demo harness
    from repro.core import ByzantineFso

    rig = FsRig(follower_fso_class=ByzantineFso)
    rig.submit("add", 1)
    rig.run()
    rig.fs.follower.go_byzantine(corrupt_outputs=True)
    rig.submit("add", 2)
    rig.run()
    print(f"   values seen by the environment: {rig.sink.values}")
    print(f"   fail-signals received:          {rig.fail_signals}")
    assert rig.sink.values in ([], [1], [1, 3]), "a wrong value escaped"
    assert rig.fail_signals == ["counter"], "the fault went unreported"
    print("   => same invariant, pre-declarative plumbing\n")


def main():
    for title, description, adversary in STRATEGIES:
        run_strategy(title, description, adversary)
    run_legacy_rig()
    print(
        "tour complete: every adversary strategy was converted into a "
        "fail-signal and no corrupted value ever crossed the "
        "double-signature check."
    )


if __name__ == "__main__":
    main()
