"""False suspicions: timeout-based NewTOP vs fail-signal FS-NewTOP.

Both systems run over the same misbehaving network -- correct processes,
no crashes, but occasional 400ms delay spikes.  NewTOP's ping suspector
(with the aggressive timeouts one would pick for fast detection)
misreads the spikes as failures and splits the group.  FS-NewTOP has no
timeouts to fool: a suspicion requires an authenticated fail-signal,
so the group stays whole and total ordering just keeps terminating.

Run:  python examples/partition_demo.py
"""

from repro.fsnewtop import ByzantineTolerantGroup
from repro.net import SpikeDelay, UniformDelay
from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator


def spiky_delay():
    return SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.35, spike_ms=400.0)


def run_newtop():
    sim = Simulator(seed=11)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        delay=spiky_delay(),
        suspectors=True,
        suspector_interval=100.0,
        suspector_timeout=50.0,
        suspector_max_misses=1,
    )
    sim.run(until=120_000)
    views = {m: group.views(m) for m in range(3)}
    false_suspicions = sum(len(s.suspicions_raised) for s in group.suspectors.values())
    return views, false_suspicions


def run_fs_newtop():
    sim = Simulator(seed=11)
    group = ByzantineTolerantGroup(sim, n_members=3, delay=spiky_delay())
    for round_no in range(5):
        for m in range(3):
            sim.schedule(
                round_no * 500.0,
                lambda m=m, r=round_no: group.multicast(
                    m, ServiceType.SYMMETRIC_TOTAL.value, (r, m)
                ),
            )
    sim.run_until_idle(max_events=20_000_000)
    views = {m: group.views(m) for m in range(3)}
    suspicions = sum(len(group.member(m).suspector.suspicions_raised) for m in range(3))
    ordered = len(group.deliveries(0))
    return views, suspicions, ordered


def main():
    print("network: uniform 0.3-1.2ms delays with 35% chance of a +400ms spike")
    print("nobody crashes; every process is correct\n")

    print("== NewTOP (ping suspector, aggressive timeouts) ==")
    views, false_suspicions = run_newtop()
    print(f"  false suspicions raised: {false_suspicions}")
    for m, view_list in views.items():
        if view_list:
            print(f"  member-{m} ended in shrunken view: {view_list[-1]}")
    split = any(view_list for view_list in views.values())
    print(f"  group split without any failure: {split}\n")

    print("== FS-NewTOP (suspicion = authenticated fail-signal) ==")
    fs_views, fs_suspicions, ordered = run_fs_newtop()
    print(f"  suspicions raised: {fs_suspicions}")
    print(f"  view changes: {sum(len(v) for v in fs_views.values())}")
    print(f"  messages totally ordered despite the spikes: {ordered}")

    assert split, "expected the timeout-based system to split"
    assert fs_suspicions == 0 and all(not v for v in fs_views.values())
    print("\nFS-NewTOP kept the full group and kept ordering; suspicions cannot be false.")


if __name__ == "__main__":
    main()
