"""Figure 7 -- throughput vs group size (small messages).

Paper setup: groups of 2..15; throughput measured as ordered messages
per second while every member streams messages.

Paper's findings to reproduce in shape:
* counter-intuitively, throughput *rises* with group size from 2 before
  contention wins;
* NewTOP peaks around the request thread-pool size (10) and drops for
  larger groups;
* FS-NewTOP tracks below NewTOP: modest deficit for small groups,
  roughly half the baseline's throughput past 10 members.

The configuration comes from the scenario registry (which also carries
a PBFT comparator for ``python -m repro campaign``; this benchmark
measures the paper's two systems).
"""

from repro.analysis import format_series_table
from repro.experiments import get_scenario, run_scenario

from benchmarks.conftest import publish

SCENARIO = get_scenario("fig7_throughput")
GROUP_SIZES = SCENARIO.labels()


def _sweep():
    newtop, fs = [], []
    for point in SCENARIO.sweep:
        base = run_scenario(SCENARIO.spec_for("newtop", point))
        wrapped = run_scenario(SCENARIO.spec_for("fs-newtop", point))
        assert wrapped.metrics["fail_signals"] == 0, f"spurious fail-signal at n={point.label}"
        newtop.append(base.metrics["throughput_msgs_per_s"])
        fs.append(wrapped.metrics["throughput_msgs_per_s"])
    return newtop, fs


def test_fig7_throughput(benchmark):
    newtop, fs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 7: throughput vs group size (small messages)",
        "members",
        GROUP_SIZES,
        {"NewTOP": newtop, "FS-NewTOP": fs},
        unit="msg/s",
        overhead_between=("NewTOP", "FS-NewTOP"),
    )
    publish("fig7_throughput", table)

    # Rising from n=2 for both systems (the paper's counter-intuitive
    # observation).
    assert max(newtop) > newtop[0] * 2
    assert max(fs) > fs[0]
    # NewTOP peaks near the thread-pool size and falls beyond it.
    newtop_peak = GROUP_SIZES[newtop.index(max(newtop))]
    assert 7 <= newtop_peak <= 13, f"NewTOP knee at {newtop_peak}, expected near 10"
    assert newtop[-1] < max(newtop)
    # FS-NewTOP at or below the baseline everywhere, and well below for
    # groups past the knee.
    for i, n in enumerate(GROUP_SIZES):
        assert fs[i] <= newtop[i] * 1.05, f"FS-NewTOP above baseline at n={n}"
    assert fs[-1] < newtop[-1] * 0.6
