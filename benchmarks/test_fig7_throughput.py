"""Figure 7 -- throughput vs group size (small messages).

Paper setup: groups of 2..15; throughput measured as ordered messages
per second while every member streams messages.

Paper's findings to reproduce in shape:
* counter-intuitively, throughput *rises* with group size from 2 before
  contention wins;
* NewTOP peaks around the request thread-pool size (10) and drops for
  larger groups;
* FS-NewTOP tracks below NewTOP: modest deficit for small groups,
  roughly half the baseline's throughput past 10 members.
"""

from repro.analysis import format_series_table
from repro.workloads import run_ordering_experiment

from benchmarks.conftest import publish

GROUP_SIZES = [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
MESSAGES_PER_MEMBER = 8
INTERVAL_MS = 70.0  # drives the larger groups into saturation
MESSAGE_SIZE = 3


def _sweep():
    newtop, fs = [], []
    for n in GROUP_SIZES:
        base = run_ordering_experiment(
            "newtop",
            n,
            messages_per_member=MESSAGES_PER_MEMBER,
            interval=INTERVAL_MS,
            message_size=MESSAGE_SIZE,
        )
        wrapped = run_ordering_experiment(
            "fs-newtop",
            n,
            messages_per_member=MESSAGES_PER_MEMBER,
            interval=INTERVAL_MS,
            message_size=MESSAGE_SIZE,
        )
        assert wrapped.fail_signals == 0, f"spurious fail-signal at n={n}"
        newtop.append(base.throughput_msgs_per_s)
        fs.append(wrapped.throughput_msgs_per_s)
    return newtop, fs


def test_fig7_throughput(benchmark):
    newtop, fs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 7: throughput vs group size (small messages)",
        "members",
        GROUP_SIZES,
        {"NewTOP": newtop, "FS-NewTOP": fs},
        unit="msg/s",
        overhead_between=("NewTOP", "FS-NewTOP"),
    )
    publish("fig7_throughput", table)

    # Rising from n=2 for both systems (the paper's counter-intuitive
    # observation).
    assert max(newtop) > newtop[0] * 2
    assert max(fs) > fs[0]
    # NewTOP peaks near the thread-pool size and falls beyond it.
    newtop_peak = GROUP_SIZES[newtop.index(max(newtop))]
    assert 7 <= newtop_peak <= 13, f"NewTOP knee at {newtop_peak}, expected near 10"
    assert newtop[-1] < max(newtop)
    # FS-NewTOP at or below the baseline everywhere, and well below for
    # groups past the knee.
    for i, n in enumerate(GROUP_SIZES):
        assert fs[i] <= newtop[i] * 1.05, f"FS-NewTOP above baseline at n={n}"
    assert fs[-1] < newtop[-1] * 0.6
