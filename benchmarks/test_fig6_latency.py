"""Figure 6 -- symmetric total-order latency vs group size.

Paper setup: groups of 2..10 members, each member multicasting small
(3-byte) messages at a regular interval; latency of symmetric total
ordering measured for NewTOP and FS-NewTOP.

Paper's findings to reproduce in shape:
* FS-NewTOP latency is above NewTOP at every group size;
* the difference is roughly flat for small groups and grows with group
  size (the paper reports ~50% overhead at 9-10 members on its
  hardware; our simulated stack pays relatively more for signing, so the
  ratio is larger -- the monotone-growth shape is the reproduction
  target).
"""

from repro.analysis import format_series_table
from repro.workloads import run_ordering_experiment

from benchmarks.conftest import publish

GROUP_SIZES = list(range(2, 11))
MESSAGES_PER_MEMBER = 8
INTERVAL_MS = 500.0  # paced so neither system saturates (paper figure 6)
MESSAGE_SIZE = 3


def _sweep():
    newtop, fs = [], []
    for n in GROUP_SIZES:
        base = run_ordering_experiment(
            "newtop",
            n,
            messages_per_member=MESSAGES_PER_MEMBER,
            interval=INTERVAL_MS,
            message_size=MESSAGE_SIZE,
        )
        wrapped = run_ordering_experiment(
            "fs-newtop",
            n,
            messages_per_member=MESSAGES_PER_MEMBER,
            interval=INTERVAL_MS,
            message_size=MESSAGE_SIZE,
        )
        assert wrapped.fail_signals == 0, f"spurious fail-signal at n={n}"
        newtop.append(base.latency.mean)
        fs.append(wrapped.latency.mean)
    return newtop, fs


def test_fig6_order_latency(benchmark):
    newtop, fs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 6: symmetric total-order latency (3-byte messages)",
        "members",
        GROUP_SIZES,
        {"NewTOP": newtop, "FS-NewTOP": fs},
        unit="ms",
        overhead_between=("NewTOP", "FS-NewTOP"),
    )
    publish("fig6_latency", table)

    # Shape checks (the paper's qualitative claims).
    for i, n in enumerate(GROUP_SIZES):
        assert fs[i] > newtop[i], f"FS-NewTOP must be slower at n={n}"
    # Latency grows with group size for both systems.
    assert newtop[-1] > newtop[0] * 3
    assert fs[-1] > fs[0] * 3
    # The absolute FS-NewTOP deficit grows as the group grows.
    assert (fs[-1] - newtop[-1]) > (fs[0] - newtop[0])
