"""Figure 6 -- symmetric total-order latency vs group size.

Paper setup: groups of 2..10 members, each member multicasting small
(3-byte) messages at a regular interval; latency of symmetric total
ordering measured for NewTOP and FS-NewTOP.

Paper's findings to reproduce in shape:
* FS-NewTOP latency is above NewTOP at every group size;
* the difference is roughly flat for small groups and grows with group
  size (the paper reports ~50% overhead at 9-10 members on its
  hardware; our simulated stack pays relatively more for signing, so the
  ratio is larger -- the monotone-growth shape is the reproduction
  target).

The configuration comes from the scenario registry -- this benchmark
measures exactly what ``python -m repro run --scenario fig6_latency``
runs.
"""

from repro.analysis import format_series_table
from repro.experiments import get_scenario, run_scenario

from benchmarks.conftest import publish

SCENARIO = get_scenario("fig6_latency")
GROUP_SIZES = SCENARIO.labels()


def _sweep():
    newtop, fs = [], []
    for point in SCENARIO.sweep:
        base = run_scenario(SCENARIO.spec_for("newtop", point))
        wrapped = run_scenario(SCENARIO.spec_for("fs-newtop", point))
        assert wrapped.metrics["fail_signals"] == 0, f"spurious fail-signal at n={point.label}"
        newtop.append(base.metrics["latency_mean_ms"])
        fs.append(wrapped.metrics["latency_mean_ms"])
    return newtop, fs


def test_fig6_order_latency(benchmark):
    newtop, fs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 6: symmetric total-order latency (3-byte messages)",
        "members",
        GROUP_SIZES,
        {"NewTOP": newtop, "FS-NewTOP": fs},
        unit="ms",
        overhead_between=("NewTOP", "FS-NewTOP"),
    )
    publish("fig6_latency", table)

    # Shape checks (the paper's qualitative claims).
    for i, n in enumerate(GROUP_SIZES):
        assert fs[i] > newtop[i], f"FS-NewTOP must be slower at n={n}"
    # Latency grows with group size for both systems.
    assert newtop[-1] > newtop[0] * 3
    assert fs[-1] > fs[0] * 3
    # The absolute FS-NewTOP deficit grows as the group grows.
    assert (fs[-1] - newtop[-1]) > (fs[0] - newtop[0])
