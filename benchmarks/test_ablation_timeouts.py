"""Ablation A3 -- the κ, σ, δ parameters and assumption A2/A3/A4.

Section 5 of the paper: if the divergence bounds do not actually hold,
"correct replicas might find each other untimely and start emitting
fail-signals unnecessarily".  This ablation makes that concrete:

* violating A2 (LAN delay beyond δ, via fault injection) produces a
  spurious fail-signal from a perfectly healthy pair;
* growing κ and σ buys tolerance to processing-divergence at the price
  of slower genuine-failure detection (the timeout grows).
"""

from repro.analysis import format_series_table
from repro.core import FsoConfig, FsoRole

from benchmarks.conftest import publish

from tests.core.conftest import FsRig

KAPPA_SIGMA = [1.0, 2.0, 4.0, 8.0]


def _a2_violation_signals(extra_delay_ms):
    """Healthy pair, LAN delay inflated beyond δ on the follower side."""
    rig = FsRig(config=FsoConfig(delta=2.0))
    rig.submit("add", 1)
    rig.run()
    rig.fs.link.inject_extra_delay(rig.node_b.name, extra_delay_ms)
    rig.submit("add", 2)
    rig.run()
    return 1 if rig.fs.signaled else 0


def _detection_timeout(kappa_sigma):
    """Time for a leader to detect a crashed follower, as a function of
    the κ/σ margins (larger margins -> slower detection)."""
    rig = FsRig(config=FsoConfig(delta=2.0, kappa=kappa_sigma, sigma=kappa_sigma))
    rig.submit("add", 1)
    rig.run()
    rig.fs.crash_node(FsoRole.FOLLOWER)
    before = rig.sim.now
    rig.submit("add", 2)
    rig.run()
    assert rig.fs.leader.signaled
    signal_events = rig.sim.trace.select(category="fso", event="fail-signal")
    return min(rec.time for rec in signal_events) - before


def _experiment():
    spurious = [
        _a2_violation_signals(0.0),
        _a2_violation_signals(5.0),
        _a2_violation_signals(50.0),
    ]
    detection = [_detection_timeout(ks) for ks in KAPPA_SIGMA]
    return spurious, detection


def test_timeout_parameters(benchmark):
    spurious, detection = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    table_a2 = format_series_table(
        "Ablation A3a: spurious fail-signals when the LAN exceeds delta (A2 violated)",
        "extra_delay_ms",
        [0, 5, 50],
        {"healthy pair signalled": [float(s) for s in spurious]},
    )
    table_ks = format_series_table(
        "Ablation A3b: genuine-failure detection time vs kappa=sigma margin",
        "kappa=sigma",
        KAPPA_SIGMA,
        {"detection (ms)": detection},
    )
    publish("ablation_timeouts", table_a2 + "\n\n" + table_ks)

    # Within delta: no signal.  Far beyond delta: the healthy pair
    # misjudges its peer -- exactly the failure mode section 5 warns of.
    assert spurious[0] == 0
    assert spurious[2] == 1
    # Detection latency grows with the margins (monotone).
    for i in range(len(KAPPA_SIGMA) - 1):
        assert detection[i] <= detection[i + 1] + 1e-9
