"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation
(section 4) or one ablation called out in DESIGN.md.  Each prints the
series it measured (the same rows the paper plots) and writes it to
``benchmarks/results/`` for EXPERIMENTS.md.

Absolute numbers are not expected to match 2003 hardware; the assertions
check the *shape*: who wins, where the knees fall, how overheads trend.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, table: str) -> None:
    """Print a series table and persist it for the experiment log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)
