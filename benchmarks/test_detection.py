"""E5 -- failure detection: fail-signals vs ping timeouts.

Section 2, Remark 2 and section 3.1: fail-signal suspicions are certain
and prompt (no timeout tuning), whereas NewTOP's ping suspector must
trade detection speed against false suspicions.  This experiment
measures, under the same crash:

* detection latency (crash -> survivors' first suspicion input),
* false suspicions under a spiky-delay network (where nobody crashed).
"""

from repro.analysis import format_series_table
from repro.fsnewtop import ByzantineTolerantGroup
from repro.net import SpikeDelay, UniformDelay
from repro.newtop import CrashTolerantGroup, ServiceType
from repro.sim import Simulator

from benchmarks.conftest import publish


def _fs_detection_latency(seed=0):
    """Crash the backup node of member-0 mid-run; time to suspicion."""
    sim = Simulator(seed=seed)
    group = ByzantineTolerantGroup(sim, n_members=3, collapsed=False)
    for m in range(3):
        group.multicast(m, ServiceType.SYMMETRIC_TOTAL.value, ("warm", m))
    sim.run_until_idle()
    crash_at = sim.now
    group.crash_backup(0)
    # The crash manifests on the next expected response.
    for m in range(3):
        group.multicast(m, ServiceType.SYMMETRIC_TOTAL.value, ("probe", m))
    sim.run_until_idle()
    suspicions = [
        rec.time
        for rec in sim.trace.select(category="fs-suspector", event="suspect")
    ]
    assert suspicions, "fail-signal never converted to a suspicion"
    return min(suspicions) - crash_at


def _newtop_detection_latency(interval, timeout, max_misses, seed=0):
    sim = Simulator(seed=seed)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        suspectors=True,
        suspector_interval=interval,
        suspector_timeout=timeout,
        suspector_max_misses=max_misses,
    )
    sim.run(until=3 * interval)
    crash_at = sim.now
    group.crash(0)
    sim.run(until=crash_at + 60 * interval)
    suspicions = [
        rec.time for rec in sim.trace.select(category="suspector", event="suspect")
    ]
    assert suspicions, "NewTOP suspector never fired"
    return min(s for s in suspicions if s >= crash_at) - crash_at


def _newtop_false_suspicions(interval, timeout, max_misses, seed=11):
    spiky = SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.35, spike_ms=400.0)
    sim = Simulator(seed=seed)
    group = CrashTolerantGroup(
        sim,
        n_members=3,
        delay=spiky,
        suspectors=True,
        suspector_interval=interval,
        suspector_timeout=timeout,
        suspector_max_misses=max_misses,
    )
    sim.run(until=120_000)
    return sum(len(s.suspicions_raised) for s in group.suspectors.values())


def _fs_false_suspicions(seed=11):
    spiky = SpikeDelay(UniformDelay(0.3, 1.2), spike_probability=0.35, spike_ms=400.0)
    sim = Simulator(seed=seed)
    group = ByzantineTolerantGroup(sim, n_members=3, delay=spiky)
    for r in range(5):
        for m in range(3):
            sim.schedule(
                r * 500.0,
                lambda m=m, r=r: group.multicast(m, ServiceType.SYMMETRIC_TOTAL.value, (r, m)),
            )
    sim.run_until_idle(max_events=20_000_000)
    return sum(len(group.member(m).suspector.suspicions_raised) for m in range(3))


def _experiment():
    fs_latency = _fs_detection_latency()
    # NewTOP with aggressive timeouts: fast detection, false suspicions.
    aggressive_latency = _newtop_detection_latency(100.0, 50.0, 1)
    aggressive_false = _newtop_false_suspicions(100.0, 50.0, 1)
    # NewTOP with conservative timeouts: safe, but slow detection.
    conservative_latency = _newtop_detection_latency(2_000.0, 1_500.0, 3)
    conservative_false = _newtop_false_suspicions(2_000.0, 1_500.0, 3)
    fs_false = _fs_false_suspicions()
    return {
        "detection_ms": [fs_latency, aggressive_latency, conservative_latency],
        "false_suspicions": [float(fs_false), float(aggressive_false), float(conservative_false)],
    }


def test_detection_tradeoff(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    table = format_series_table(
        "E5: failure detection -- fail-signal vs ping/timeout suspicion",
        "system",
        ["FS-NewTOP", "NewTOP (aggressive)", "NewTOP (conservative)"],
        rows,
    )
    publish("detection", table)

    fs_latency, aggressive_latency, conservative_latency = rows["detection_ms"]
    fs_false, aggressive_false, conservative_false = rows["false_suspicions"]

    # The paper's point: FS detection needs no timeout trade-off.
    assert fs_false == 0, "fail-signal suspicion must never be false"
    assert aggressive_false > 0, "aggressive timeouts should misfire on a spiky net"
    assert conservative_false == 0
    # ...and FS detection is prompt: faster than the conservative
    # configuration that achieves the same zero false positives.
    assert fs_latency < conservative_latency
