"""Ablation A2 -- the request thread pool.

The paper singles out the ORB's configurable pool ("a default of 10
threads to handle incoming requests") as the cause of the Figure 7 drop
past 10 members.  This ablation sweeps the pool size at a fixed group
size above the default knee and reports throughput and latency.
"""

from repro.analysis import format_series_table
from repro.workloads import run_ordering_experiment

from benchmarks.conftest import publish

POOL_SIZES = [2, 4, 10, 20, 40]
N_MEMBERS = 12
MESSAGES = 8
INTERVAL = 70.0


def _sweep():
    throughput, latency = [], []
    for pool in POOL_SIZES:
        result = run_ordering_experiment(
            "newtop",
            N_MEMBERS,
            messages_per_member=MESSAGES,
            interval=INTERVAL,
            pool_size=pool,
        )
        throughput.append(result.throughput_msgs_per_s)
        latency.append(result.latency.mean)
    return throughput, latency


def test_thread_pool_sweep(benchmark):
    throughput, latency = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        f"Ablation A2: NewTOP at {N_MEMBERS} members vs thread-pool size",
        "pool_size",
        POOL_SIZES,
        {"throughput (msg/s)": throughput, "latency (ms)": latency},
    )
    publish("ablation_threadpool", table)

    # A starved pool must not beat an ample one.
    assert throughput[0] <= max(throughput) * 1.05
    # Beyond the knee, extra threads stop helping: the group's load is
    # bounded by per-servant serialisation and CPU, so 20 vs 40 threads
    # are within noise of each other.
    assert abs(throughput[-1] - throughput[-2]) < 0.25 * max(throughput)
