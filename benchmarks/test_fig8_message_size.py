"""Figure 8 -- throughput vs message size, fixed 10-member group.

Paper setup: group of 10, message sizes 0k..10k; throughput of both
systems measured.

Paper's findings to reproduce in shape:
* throughput of both systems falls as the message size grows;
* FS-NewTOP's deficit is roughly constant across message sizes (the
  per-output signing cost is size-insensitive apart from digesting).

The configuration comes from the scenario registry -- this benchmark
measures exactly what ``python -m repro run --scenario fig8_message_size``
runs.
"""

from repro.analysis import format_series_table
from repro.experiments import get_scenario, run_scenario

from benchmarks.conftest import publish

SCENARIO = get_scenario("fig8_message_size")
MESSAGE_SIZES_KB = SCENARIO.labels()


def _sweep():
    newtop, fs = [], []
    for point in SCENARIO.sweep:
        base = run_scenario(SCENARIO.spec_for("newtop", point))
        wrapped = run_scenario(SCENARIO.spec_for("fs-newtop", point))
        assert wrapped.metrics["fail_signals"] == 0, (
            f"spurious fail-signal at {point.label}k"
        )
        newtop.append(base.metrics["throughput_msgs_per_s"])
        fs.append(wrapped.metrics["throughput_msgs_per_s"])
    return newtop, fs


def test_fig8_message_size(benchmark):
    newtop, fs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 8: throughput vs message size (10 members)",
        "size_kb",
        MESSAGE_SIZES_KB,
        {"NewTOP": newtop, "FS-NewTOP": fs},
        unit="msg/s",
        overhead_between=("NewTOP", "FS-NewTOP"),
    )
    publish("fig8_message_size", table)

    # Throughput decreases with message size for both systems.
    assert newtop[-1] < newtop[0]
    assert fs[-1] < fs[0]
    # FS-NewTOP below NewTOP at every size.
    for i, kb in enumerate(MESSAGE_SIZES_KB):
        assert fs[i] < newtop[i], f"FS-NewTOP above baseline at {kb}k"
    # The deficit does not explode with size (paper: roughly constant).
    deficits = [newtop[i] - fs[i] for i in range(len(MESSAGE_SIZES_KB))]
    assert max(deficits) < 3.0 * max(min(deficits), 1.0)
