"""Figure 8 -- throughput vs message size, fixed 10-member group.

Paper setup: group of 10, message sizes 0k..10k; throughput of both
systems measured.

Paper's findings to reproduce in shape:
* throughput of both systems falls as the message size grows;
* FS-NewTOP's deficit is roughly constant across message sizes (the
  per-output signing cost is size-insensitive apart from digesting).
"""

from repro.analysis import format_series_table
from repro.workloads import run_ordering_experiment

from benchmarks.conftest import publish

MESSAGE_SIZES_KB = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
N_MEMBERS = 10
MESSAGES_PER_MEMBER = 6
INTERVAL_MS = 70.0


def _sweep():
    newtop, fs = [], []
    for size_kb in MESSAGE_SIZES_KB:
        size = size_kb * 1024
        base = run_ordering_experiment(
            "newtop",
            N_MEMBERS,
            messages_per_member=MESSAGES_PER_MEMBER,
            interval=INTERVAL_MS,
            message_size=size,
        )
        wrapped = run_ordering_experiment(
            "fs-newtop",
            N_MEMBERS,
            messages_per_member=MESSAGES_PER_MEMBER,
            interval=INTERVAL_MS,
            message_size=size,
        )
        assert wrapped.fail_signals == 0, f"spurious fail-signal at {size_kb}k"
        newtop.append(base.throughput_msgs_per_s)
        fs.append(wrapped.throughput_msgs_per_s)
    return newtop, fs


def test_fig8_message_size(benchmark):
    newtop, fs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 8: throughput vs message size (10 members)",
        "size_kb",
        MESSAGE_SIZES_KB,
        {"NewTOP": newtop, "FS-NewTOP": fs},
        unit="msg/s",
        overhead_between=("NewTOP", "FS-NewTOP"),
    )
    publish("fig8_message_size", table)

    # Throughput decreases with message size for both systems.
    assert newtop[-1] < newtop[0]
    assert fs[-1] < fs[0]
    # FS-NewTOP below NewTOP at every size.
    for i, kb in enumerate(MESSAGE_SIZES_KB):
        assert fs[i] < newtop[i], f"FS-NewTOP above baseline at {kb}k"
    # The deficit does not explode with size (paper: roughly constant).
    deficits = [newtop[i] - fs[i] for i in range(len(MESSAGE_SIZES_KB))]
    assert max(deficits) < 3.0 * max(min(deficits), 1.0)
