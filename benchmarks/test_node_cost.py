"""E4 -- the node-count cost of the approach (sections 1 and 3).

The paper's cost analysis: masking f application-level Byzantine faults
needs 2f+1 application replicas; each replica's middleware is an FS pair
on two nodes, so FS-NewTOP needs 4f+2 nodes -- (f+1) more than the
3f+1 optimum of from-scratch Byzantine total-order protocols.

This "benchmark" regenerates that table and cross-checks it against the
number of nodes the deployment builder actually instantiates.
"""

from repro.analysis import format_series_table
from repro.fsnewtop import ByzantineTolerantGroup, node_requirements
from repro.sim import Simulator

from benchmarks.conftest import publish

FAULT_BUDGETS = [1, 2, 3, 4, 5]


def _table_rows():
    rows = {
        "app replicas (2f+1)": [],
        "FS-NewTOP nodes (4f+2)": [],
        "from-scratch BFT (3f+1)": [],
        "crash-only (f+1)": [],
        "FS extra vs optimum": [],
    }
    for f in FAULT_BUDGETS:
        req = node_requirements(f)
        rows["app replicas (2f+1)"].append(float(req.app_replicas))
        rows["FS-NewTOP nodes (4f+2)"].append(float(req.fs_newtop_nodes))
        rows["from-scratch BFT (3f+1)"].append(float(req.traditional_bft_nodes))
        rows["crash-only (f+1)"].append(float(req.crash_tolerant_nodes))
        rows["FS extra vs optimum"].append(float(req.fs_overhead_nodes))
    return rows


def test_node_cost_table(benchmark):
    rows = benchmark.pedantic(_table_rows, rounds=1, iterations=1)
    table = format_series_table(
        "Node requirements to mask f Byzantine faults (section 1 cost analysis)",
        "f",
        FAULT_BUDGETS,
        rows,
    )
    publish("node_cost", table)

    for i, f in enumerate(FAULT_BUDGETS):
        assert rows["FS-NewTOP nodes (4f+2)"][i] == 4 * f + 2
        assert rows["from-scratch BFT (3f+1)"][i] == 3 * f + 1
        assert rows["FS extra vs optimum"][i] == f + 1


def test_deployment_builder_matches_figure4_cost():
    """The figure 4 deployment really instantiates 2 nodes per member
    (4f+2 when the group holds 2f+1 application replicas)."""
    for f in (1, 2):
        members = 2 * f + 1
        sim = Simulator()
        group = ByzantineTolerantGroup(sim, n_members=members, collapsed=False)
        assert group.nodes_used() == 4 * f + 2


def test_collapsed_deployment_halves_nodes():
    """The figure 5 experimental placement uses one node per member."""
    sim = Simulator()
    group = ByzantineTolerantGroup(sim, n_members=3, collapsed=True)
    assert group.nodes_used() == 3
