"""E6 -- FS-NewTOP against the from-scratch 3f+1 comparator.

Section 1's positioning, measured: a PBFT-style protocol needs fewer
nodes (3f+1 vs 4f+2) and no synchronous intra-pair LAN, but its
termination hangs on a view timeout -- on a network whose delays exceed
that timeout it churns through view changes, while FS-NewTOP keeps
ordering with zero churn on the same trace.
"""

from repro.analysis import format_series_table
from repro.baselines import PbftCluster
from repro.fsnewtop import ByzantineTolerantGroup, node_requirements
from repro.net import Network, SpikeDelay, UniformDelay
from repro.newtop import ServiceType
from repro.sim import Simulator

from benchmarks.conftest import publish


def _pbft_run(delay, timeout, requests=6, seed=2):
    sim = Simulator(seed=seed)
    sim.trace.enabled = False
    net = Network(sim, default_delay=delay)
    cluster = PbftCluster(sim, f=1, network=net, view_timeout=timeout)
    for i in range(requests):
        sim.schedule(i * 150.0, lambda i=i: cluster.submit({"op": i}))
    sim.run(until=60_000)
    executed = min(len(r.executed) for r in cluster.replicas.values())
    churn = sum(r.view_changes for r in cluster.replicas.values())
    return executed, churn, net.stats.messages_sent


def _fs_run(delay, requests=6, seed=2):
    sim = Simulator(seed=seed)
    sim.trace.enabled = False
    group = ByzantineTolerantGroup(sim, n_members=3, delay=delay)
    for i in range(requests):
        sim.schedule(
            i * 150.0,
            lambda i=i: group.multicast(i % 3, ServiceType.SYMMETRIC_TOTAL.value, i),
        )
    sim.run_until_idle(max_events=20_000_000)
    executed = min(len(group.deliveries(m)) for m in range(3))
    signals = sum(group.members[m].fs_process.signaled for m in group.member_ids)
    return executed, signals, group.network.stats.messages_sent


def _experiment():
    calm = UniformDelay(0.3, 1.2)
    spiky = SpikeDelay(UniformDelay(0.5, 2.0), spike_probability=0.5, spike_ms=800.0)

    pbft_calm = _pbft_run(calm, timeout=500.0)
    pbft_spiky = _pbft_run(spiky, timeout=100.0)
    fs_calm = _fs_run(calm)
    fs_spiky = _fs_run(spiky)
    return pbft_calm, pbft_spiky, fs_calm, fs_spiky


def test_fs_vs_pbft(benchmark):
    pbft_calm, pbft_spiky, fs_calm, fs_spiky = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    req = node_requirements(1)
    table = format_series_table(
        "E6: FS-NewTOP (4f+2 nodes) vs PBFT-style baseline (3f+1 nodes), f=1",
        "metric",
        [
            "nodes",
            "ordered (calm net)",
            "ordered (spiky net)",
            "view churn / fail-signals (spiky)",
        ],
        {
            "PBFT-style": [
                float(req.traditional_bft_nodes),
                float(pbft_calm[0]),
                float(pbft_spiky[0]),
                float(pbft_spiky[1]),
            ],
            "FS-NewTOP": [
                float(req.fs_newtop_nodes),
                float(fs_calm[0]),
                float(fs_spiky[0]),
                float(fs_spiky[1]),
            ],
        },
    )
    publish("baseline_pbft", table)

    # Both order everything on the calm network.
    assert pbft_calm[0] == 6 and fs_calm[0] == 6
    assert pbft_calm[1] == 0
    # On the hostile network: PBFT churns through view changes (its
    # liveness requirement bites); FS-NewTOP keeps ordering with zero
    # spurious signals and zero churn.
    assert pbft_spiky[1] > 0
    assert fs_spiky[0] == 6
    assert fs_spiky[1] == 0
    # The node-count trade-off from the paper's cost analysis.
    assert req.fs_newtop_nodes - req.traditional_bft_nodes == 2  # f+1 with f=1
