"""E6 -- FS-NewTOP against the from-scratch 3f+1 comparator.

Section 1's positioning, measured: a PBFT-style protocol needs fewer
nodes (3f+1 vs 4f+2) and no synchronous intra-pair LAN, but its
termination hangs on a view timeout -- on a network whose delays exceed
that timeout it churns through view changes, while FS-NewTOP keeps
ordering with zero churn on the same trace.

The configuration comes from the scenario registry's
``pbft_head_to_head`` scenario: six requests against f=1 deployments of
both designs, on a calm LAN and on a spiky net.
"""

from repro.analysis import format_series_table
from repro.experiments import get_scenario, run_scenario
from repro.fsnewtop import node_requirements

from benchmarks.conftest import publish

SCENARIO = get_scenario("pbft_head_to_head")


def _experiment():
    calm, spiky = SCENARIO.sweep
    pbft_calm = run_scenario(SCENARIO.spec_for("pbft", calm)).metrics
    pbft_spiky = run_scenario(SCENARIO.spec_for("pbft", spiky)).metrics
    fs_calm = run_scenario(SCENARIO.spec_for("fs-newtop", calm)).metrics
    fs_spiky = run_scenario(SCENARIO.spec_for("fs-newtop", spiky)).metrics
    return pbft_calm, pbft_spiky, fs_calm, fs_spiky


def test_fs_vs_pbft(benchmark):
    pbft_calm, pbft_spiky, fs_calm, fs_spiky = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    req = node_requirements(1)
    table = format_series_table(
        "E6: FS-NewTOP (4f+2 nodes) vs PBFT-style baseline (3f+1 nodes), f=1",
        "metric",
        [
            "nodes",
            "ordered (calm net)",
            "ordered (spiky net)",
            "view churn / fail-signals (spiky)",
        ],
        {
            "PBFT-style": [
                float(req.traditional_bft_nodes),
                pbft_calm["ordered"],
                pbft_spiky["ordered"],
                pbft_spiky["view_changes"],
            ],
            "FS-NewTOP": [
                float(req.fs_newtop_nodes),
                fs_calm["ordered"],
                fs_spiky["ordered"],
                fs_spiky["fail_signals"],
            ],
        },
    )
    publish("baseline_pbft", table)

    # Both order everything on the calm network.
    assert pbft_calm["ordered"] == 6 and fs_calm["ordered"] == 6
    assert pbft_calm["view_changes"] == 0
    # On the hostile network: PBFT churns through view changes (its
    # liveness requirement bites); FS-NewTOP keeps ordering with zero
    # spurious signals and zero churn.
    assert pbft_spiky["view_changes"] > 0
    assert fs_spiky["ordered"] == 6
    assert fs_spiky["fail_signals"] == 0
    # The node-count trade-off from the paper's cost analysis.
    assert req.fs_newtop_nodes - req.traditional_bft_nodes == 2  # f+1 with f=1
