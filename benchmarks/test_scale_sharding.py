"""Scale-out -- sharded multi-group ordering vs the single-group ceiling.

Beyond the paper: the ``scale_shard_ab`` scenario deploys the same 8
members (and the identical keyed workload) as S=1/2/4/8 independent
FS-NewTOP groups.  The single 8-member group sits deep in multicast
fan-out and crypto contention at the 10ms interval; four 2-member
shards order the same aggregate load almost embarrassingly in parallel.

Shape to reproduce:
* aggregate throughput multiplies with shard count -- >= 2.5x at S=4
  vs S=1 (the tentpole acceptance number; measured ~10x+ here);
* the same messages are fully ordered at every S, with zero
  fail-signals and the load spread evenly over shards;
* with a cross-shard ratio, the two-phase barrier orders every
  multi-key operation at a bounded latency premium, audited by the
  cross-shard oracle.

All metrics are simulated-time and deterministic, so the assertions are
exact, not statistical.  The S=8 point adds little shape on top of S=4
and is marked ``slow`` (run with ``--runslow``) to keep tier-1 lean.
"""

import pytest

from repro.analysis import format_series_table
from repro.experiments import audit_scenario, get_scenario, run_scenario

from benchmarks.conftest import publish

SCENARIO = get_scenario("scale_shard_ab")
XRATIO = get_scenario("scale_shard_xratio")


def _cell(scenario, label):
    point = next(p for p in scenario.sweep if p.label == label)
    return scenario.spec_for("fs-newtop", point)


def _run_points(scenario, labels):
    return {label: run_scenario(_cell(scenario, label)).metrics for label in labels}


def test_scale_sharding_ab(benchmark):
    results = benchmark.pedantic(
        _run_points, args=(SCENARIO, ("S1", "S2", "S4")), rounds=1, iterations=1
    )
    table = format_series_table(
        "Scale-out A/B: S shards over 8 members (10ms interval, keyed)",
        "metric",
        [
            "throughput (msg/s)",
            "per-shard throughput",
            "load imbalance (x)",
            "fail-signals",
        ],
        {
            label: [
                m["throughput_msgs_per_s"],
                m["per_shard_throughput"],
                m["load_imbalance"],
                m["fail_signals"],
            ]
            for label, m in results.items()
        },
    )
    publish("scale_sharding_ab", table)

    single, two, four = results["S1"], results["S2"], results["S4"]
    # Identical keyed load fully ordered at every S; scaling out must
    # not cost correctness or raise a single spurious signal.
    assert single["ordered"] == two["ordered"] == four["ordered"] == 96.0
    for metrics in results.values():
        assert metrics["fail_signals"] == 0.0
        assert metrics["cross_shard_ops"] == 0.0  # shard-local traffic only
    # The tentpole acceptance: >= 2.5x aggregate throughput at S=4.
    assert four["throughput_msgs_per_s"] >= single["throughput_msgs_per_s"] * 2.5
    # Monotone in between, and the keyspace spreads the load evenly.
    assert two["throughput_msgs_per_s"] > single["throughput_msgs_per_s"]
    assert four["load_imbalance"] <= 1.5


@pytest.mark.slow
def test_scale_sharding_s8(benchmark):
    """The widest deployment: 8 single-member shards."""
    results = benchmark.pedantic(
        _run_points, args=(SCENARIO, ("S1", "S8")), rounds=1, iterations=1
    )
    single, eight = results["S1"], results["S8"]
    assert eight["ordered"] == single["ordered"] == 96.0
    assert eight["fail_signals"] == 0.0
    assert eight["throughput_msgs_per_s"] >= single["throughput_msgs_per_s"] * 2.5


def test_cross_shard_barrier_under_load(benchmark):
    results = benchmark.pedantic(
        _run_points, args=(XRATIO, ("0%", "20%")), rounds=1, iterations=1
    )
    local_only, mixed = results["0%"], results["20%"]
    table = format_series_table(
        "Cross-shard ratio at S=4 (two-phase barrier)",
        "metric",
        [
            "throughput (msg/s)",
            "cross-shard ops",
            "cross-shard ordered",
            "cross-shard latency (ms)",
            "local latency (ms)",
        ],
        {
            label: [
                m["throughput_msgs_per_s"],
                m["cross_shard_ops"],
                m["cross_shard_ordered"],
                m["cross_shard_latency_mean_ms"],
                m["latency_mean_ms"],
            ]
            for label, m in results.items()
        },
    )
    publish("scale_sharding_xratio", table)

    # Every multi-key operation the workload offered was barrier-
    # sequenced to completion across both its shards.
    assert mixed["cross_shard_ops"] > 0
    assert mixed["cross_shard_ordered"] == mixed["cross_shard_ops"]
    assert mixed["fail_signals"] == 0.0
    # The barrier costs something (two ordered multicasts per involved
    # shard) but not the farm: throughput degrades, never collapses.
    assert mixed["throughput_msgs_per_s"] < local_only["throughput_msgs_per_s"]
    assert mixed["throughput_msgs_per_s"] > local_only["throughput_msgs_per_s"] * 0.3
    assert mixed["cross_shard_latency_mean_ms"] > 0.0


def test_sharded_cells_audit_clean():
    """The eight oracles (cross-shard and state-consistency included) pass on sharded
    deployments with live cross-shard traffic."""
    for scenario, label in ((SCENARIO, "S2"), (XRATIO, "20%")):
        run = audit_scenario(_cell(scenario, label), scenario=scenario.name)
        assert len(run.report.verdicts) == 8
        assert run.report.ok, run.report.render()
