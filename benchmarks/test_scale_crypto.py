"""Scale A/B -- the v2 crypto/encoding engine vs the reference path.

Beyond the paper: the ``scale_crypto_ab`` scenario drives the
``scale_batch_ab`` workload (8-member FS-NewTOP group, 10ms per-member
interval) and sweeps the *crypto engine* instead of the batching knob:
the paper's RSA cost table, the ed25519 provider with its measured cost
table, and ed25519 plus the compact binwire signing/framing codec.

Shape to reproduce:
* at identical batching, the ed25519 provider's cheaper sign/verify
  costs and amortised pair verification turn into real simulated
  throughput over the rsa/hmac cost table;
* the binwire codec is simulation-neutral: the ed25519 and
  ed25519+binwire cells order identically (its win is host bytes and
  host time, gated by ``repro bench``);
* the full v2 engine (ed25519 + binwire + deep batched pipeline)
  orders the same workload at >= 3x the throughput of the paper's
  reference engine (per-output RSA signing, canonical bytes);
* detection soundness is untouched -- zero fail-signals on every cell.

All metrics are simulated-time and deterministic, so the assertions are
exact, not statistical.  The sweep is trimmed to a reduced message
count to stay CI-sized; the full grid is ``python -m repro campaign
--scenario scale_crypto_ab``.
"""

import pytest

from repro.analysis import format_series_table
from repro.crypto.ed25519 import HAVE_ED25519
from repro.crypto.provider import CryptoSpec
from repro.experiments import get_scenario, run_scenario
from repro.experiments.spec import BatchingSpec

from benchmarks.conftest import publish

pytestmark = pytest.mark.skipif(
    not HAVE_ED25519, reason="needs the fastcrypto extra (cryptography)"
)

SCENARIO = get_scenario("scale_crypto_ab")
LABELS = ("rsa", "ed25519", "ed25519+binwire")
POINTS = [p for p in SCENARIO.sweep if p.label in LABELS]

#: The full v2 engine configuration: fast provider, compact codec and
#: a deeper batched pipeline to spend the freed CPU on amortisation.
V2_BATCHING = BatchingSpec(max_batch=16, max_delay_ms=8.0, max_inflight=8)
V2_CRYPTO = CryptoSpec(provider="ed25519", codec="binwire")


def _metrics_table(title, labels, results):
    return format_series_table(
        title,
        "metric",
        ["throughput (msg/s)", "signatures/ordered", "fail-signals"],
        {
            label: [
                m["throughput_msgs_per_s"],
                m["signatures_per_ordered"],
                m["fail_signals"],
            ]
            for label, m in zip(labels, results)
        },
    )


def _provider_sweep():
    metrics = []
    for point in POINTS:
        spec = SCENARIO.spec_for("fs-newtop", point).replace(messages_per_member=8)
        metrics.append(run_scenario(spec).metrics)
    return metrics


def test_scale_crypto_provider_ab(benchmark):
    results = benchmark.pedantic(_provider_sweep, rounds=1, iterations=1)
    rsa, ed, ed_binwire = results
    publish(
        "scale_crypto_provider_ab",
        _metrics_table(
            "Scale A/B: crypto provider at fixed batching (n=8, 10ms interval)",
            LABELS,
            results,
        ),
    )

    # Same workload fully ordered on every cell; a provider swap must
    # not cost correctness or raise a single spurious signal.
    assert rsa["ordered"] == ed["ordered"] == ed_binwire["ordered"] == 64.0
    assert all(m["fail_signals"] == 0.0 for m in results)
    # Provider win at identical batching: cheaper sign/verify plus the
    # amortised pair-verification factor become simulated throughput.
    assert ed["throughput_msgs_per_s"] > rsa["throughput_msgs_per_s"] * 1.3
    assert ed["signatures_per_ordered"] < rsa["signatures_per_ordered"]
    # The codec is simulation-neutral: binwire changes host bytes, not
    # the virtual timeline.
    assert ed_binwire["throughput_msgs_per_s"] == ed["throughput_msgs_per_s"]
    assert ed_binwire["signatures_per_ordered"] == ed["signatures_per_ordered"]


def _engine_ab():
    base = SCENARIO.spec_for("fs-newtop", POINTS[0]).replace(messages_per_member=8)
    v1 = base.replace(batching=None, crypto=CryptoSpec(provider="rsa"))
    v2 = base.replace(batching=V2_BATCHING, crypto=V2_CRYPTO)
    return [run_scenario(v1).metrics, run_scenario(v2).metrics]


def test_scale_crypto_engine_v1_v2(benchmark):
    results = benchmark.pedantic(_engine_ab, rounds=1, iterations=1)
    v1, v2 = results
    publish(
        "scale_crypto_engine_ab",
        _metrics_table(
            "Scale A/B: engine v1 (per-output rsa, canonical) vs "
            "v2 (batched ed25519, binwire)",
            ["v1", "v2"],
            results,
        ),
    )

    assert v1["ordered"] == v2["ordered"] == 64.0
    assert v1["fail_signals"] == 0.0
    assert v2["fail_signals"] == 0.0
    # The tentpole claim: the v2 engine orders the same stream at >= 3x
    # the reference engine's simulated throughput, on a third of the
    # signing operations.
    assert v2["throughput_msgs_per_s"] > v1["throughput_msgs_per_s"] * 3.0
    assert v2["signatures_per_ordered"] < v1["signatures_per_ordered"] / 3.0
