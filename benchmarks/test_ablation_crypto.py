"""Ablation A1 -- how much of the FS overhead is signing?

The paper attributes FS-NewTOP's extra latency to three sources:
input authentication, the leader's wait for the follower, and output
signing (MD5-with-RSA).  Sweeping the crypto cost model isolates the
cryptographic share: with free crypto, what remains is pure protocol
structure (the extra ordering hop and comparison round).
"""

from repro.analysis import format_series_table
from repro.crypto.costmodel import CryptoCostModel
from repro.workloads import run_ordering_experiment

from benchmarks.conftest import publish

SCALES = [0.0, 0.5, 1.0, 2.0, 4.0]
N_MEMBERS = 6
MESSAGES = 8
INTERVAL = 500.0


def _sweep():
    fs_latency = []
    for scale in SCALES:
        costs = CryptoCostModel().scaled(scale)
        result = run_ordering_experiment(
            "fs-newtop",
            N_MEMBERS,
            messages_per_member=MESSAGES,
            interval=INTERVAL,
            crypto_costs=costs,
        )
        assert result.fail_signals == 0
        fs_latency.append(result.latency.mean)
    baseline = run_ordering_experiment(
        "newtop", N_MEMBERS, messages_per_member=MESSAGES, interval=INTERVAL
    )
    return fs_latency, baseline.latency.mean


def test_crypto_cost_share(benchmark):
    fs_latency, newtop_latency = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series_table(
        "Ablation A1: FS-NewTOP latency vs crypto cost scale "
        f"(NewTOP baseline {newtop_latency:.1f} ms, 6 members)",
        "crypto_scale",
        SCALES,
        {"FS-NewTOP": fs_latency},
        unit="ms",
    )
    publish("ablation_crypto", table)

    # Latency grows monotonically with crypto cost.
    for i in range(len(SCALES) - 1):
        assert fs_latency[i] <= fs_latency[i + 1] * 1.05
    assert fs_latency[-1] > fs_latency[0] * 1.5
    # Even free crypto leaves a structural overhead over NewTOP (the
    # ordering hop and the comparison round are not crypto).
    assert fs_latency[0] > newtop_latency
