"""Scale A/B -- the batched compare path vs the paper's per-output path.

Beyond the paper: the ``scale_batch_ab`` scenario drives an 8-member
FS-NewTOP group at a 10ms per-member interval (deep crypto saturation)
and sweeps the batching knob from off to ``max_batch=16``.

Shape to reproduce:
* the batched path orders the same messages with materially fewer
  signing operations per ordered message (the amortisation);
* at this load the amortisation converts into real fig-7-style
  throughput: batched beats unbatched;
* detection soundness is untouched -- zero fail-signals on every point.

All metrics are simulated-time and deterministic, so the assertions are
exact, not statistical.  The benchmark trims the sweep to the off/b8
endpoints and a reduced message count to stay CI-sized; the full grid is
``python -m repro campaign --scenario scale_batch_ab``.
"""

from repro.analysis import format_series_table
from repro.experiments import get_scenario, run_scenario

from benchmarks.conftest import publish

SCENARIO = get_scenario("scale_batch_ab")
POINTS = [p for p in SCENARIO.sweep if p.label in ("off", "b8")]


def _sweep():
    metrics = []
    for point in POINTS:
        spec = SCENARIO.spec_for("fs-newtop", point).replace(messages_per_member=8)
        metrics.append(run_scenario(spec).metrics)
    return metrics


def test_scale_batching_ab(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    unbatched, batched = results
    labels = [p.label for p in POINTS]
    table = format_series_table(
        "Scale A/B: batched vs unbatched compare path (n=8, 10ms interval)",
        "metric",
        ["throughput (msg/s)", "signatures/ordered", "batch mean size", "fail-signals"],
        {
            label: [
                m["throughput_msgs_per_s"],
                m["signatures_per_ordered"],
                m["batch_mean_size"],
                m["fail_signals"],
            ]
            for label, m in zip(labels, results)
        },
    )
    publish("scale_batching_ab", table)

    # Same workload fully ordered either way; batching must not cost
    # correctness or raise a single spurious signal.
    assert unbatched["ordered"] == batched["ordered"] == 64.0
    assert unbatched["fail_signals"] == 0.0
    assert batched["fail_signals"] == 0.0
    # The tentpole claim: amortised crypto becomes throughput at load.
    assert batched["signatures_per_ordered"] < unbatched["signatures_per_ordered"] * 0.7
    assert batched["throughput_msgs_per_s"] > unbatched["throughput_msgs_per_s"] * 1.2
    assert batched["batch_mean_size"] > 1.3
