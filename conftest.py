"""Repository-wide pytest configuration.

Registers the ``slow`` marker and skips slow tests by default so tier-1
(`pytest -x -q`) stays CI-sized on a 1-core runner; opt in with
``pytest --runslow``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (large-S shard benchmarks etc.)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark; skipped unless --runslow is given"
    )
    config.addinivalue_line(
        "markers",
        "realtime: drives the wall-clock asyncio transport and sleeps real "
        "time; the whole subset stays under ~10s (deselect with -m 'not "
        "realtime')",
    )
    config.addinivalue_line(
        "markers",
        "soak: long bounded-memory soak run; skipped unless --runslow is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow benchmark; run with --runslow")
    skip_soak = pytest.mark.skip(reason="soak run; run with --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
        elif "soak" in item.keywords:
            item.add_marker(skip_soak)
